#include "common/tracing.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/json_util.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace colt {

Tracer::Tracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_(WallTimer::Now()) {}

Tracer& Tracer::Default() {
  // One tracer per thread: the tracer's stack discipline (innermost-first
  // scope destruction) cannot hold across threads, so worker threads in
  // the task-parallel layer get a private, default-disabled instance —
  // their spans are inert unless a worker explicitly enables its own
  // tracer. The main thread's instance is the one harnesses export from.
  // By value (not the leaky-singleton idiom) so short-lived pool workers
  // release their instance at thread exit instead of leaking one each.
  static thread_local Tracer tracer;
  return tracer;
}

Tracer::Scope Tracer::StartSpan(std::string_view name,
                                std::string_view site) {
  if (!enabled_) return Scope();
  OpenSpan open;
  open.span.id = next_id_++;
  open.span.parent = open_.empty() ? 0 : open_.back().span.id;
  open.span.name.assign(name);
  open.span.site.assign(site);
  open.span.start_seconds = WallTimer::Now() - epoch_;
  open_.push_back(std::move(open));
  return Scope(this, open_.size() - 1);
}

void Tracer::Scope::AddAttr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  Span& span = tracer_->open_[depth_].span;
  span.attrs.push_back(SpanAttr{std::string(key), std::string(value)});
}

void Tracer::Scope::AddAttr(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  AddAttr(key, std::string_view(buf));
}

void Tracer::Scope::AddAttr(std::string_view key, int64_t value) {
  AddAttr(key, std::string_view(std::to_string(value)));
}

void Tracer::Scope::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  COLT_CHECK(depth_ + 1 == tracer->open_.size())
      << "span scopes must close innermost-first (open depth "
      << tracer->open_.size() << ", closing " << depth_ << ")";
  Span span = std::move(tracer->open_.back().span);
  tracer->open_.pop_back();
  span.duration_seconds =
      WallTimer::Now() - tracer->epoch_ - span.start_seconds;
  tracer->Sink(std::move(span));
}

void Tracer::Sink(Span span) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[ring_start_] = std::move(span);
  ring_start_ = (ring_start_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<Span> Tracer::Spans() const {
  std::vector<Span> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_start_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  ring_.clear();
  ring_start_ = 0;
  dropped_ = 0;
  epoch_ = WallTimer::Now();
}

std::string Tracer::ToJsonl() const {
  std::string out;
  for (const Span& span : Spans()) {
    out += "{\"id\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    out += ",\"name\":";
    json::AppendString(span.name, &out);
    out += ",\"site\":";
    json::AppendString(span.site, &out);
    out += ",\"start\":";
    json::AppendDouble(span.start_seconds, &out);
    out += ",\"dur\":";
    json::AppendDouble(span.duration_seconds, &out);
    out += ",\"attrs\":{";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) out += ",";
      json::AppendString(span.attrs[i].key, &out);
      out += ":";
      json::AppendString(span.attrs[i].value, &out);
    }
    out += "}}\n";
  }
  return out;
}

std::string Tracer::ToChromeTrace() const {
  // Complete ("X") events; timestamps in microseconds as about:tracing
  // expects. All spans of one tracer share one process/thread id — each
  // thread records into its own Default() instance (per-worker-buffer
  // rule, DESIGN.md §10) — so nesting renders from the time ranges alone.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : Spans()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    json::AppendString(span.name, &out);
    out += ",\"cat\":";
    json::AppendString(span.site.empty() ? std::string("colt") : span.site, &out);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    json::AppendDouble(span.start_seconds * 1e6, &out);
    out += ",\"dur\":";
    json::AppendDouble(span.duration_seconds * 1e6, &out);
    out += ",\"args\":{\"id\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    for (const SpanAttr& attr : span.attrs) {
      out += ",";
      json::AppendString(attr.key, &out);
      out += ":";
      json::AppendString(attr.value, &out);
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

Result<std::vector<Span>> Tracer::FromJsonl(std::string_view text) {
  std::vector<Span> spans;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line =
        json::StripLineEnding(text.substr(pos, end - pos));
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    const auto malformed = [&](const std::string& why) {
      return Status::InvalidArgument("trace jsonl line " +
                                     std::to_string(line_no) + ": " + why);
    };
    // Parses the exact shape ToJsonl writes (common/json_util subset).
    Span span;
    json::Reader reader(line);
    if (!reader.Consume('{')) return malformed("expected object");
    bool first = true;
    while (!reader.Consume('}')) {
      if (!first && !reader.Consume(',')) return malformed("expected ','");
      first = false;
      std::string key;
      if (!reader.ReadString(&key) || !reader.Consume(':')) {
        return malformed("bad key");
      }
      bool ok = true;
      if (key == "id") {
        ok = reader.ReadInt(&span.id);
      } else if (key == "parent") {
        ok = reader.ReadInt(&span.parent);
      } else if (key == "name") {
        ok = reader.ReadString(&span.name);
      } else if (key == "site") {
        ok = reader.ReadString(&span.site);
      } else if (key == "start") {
        ok = reader.ReadDouble(&span.start_seconds);
      } else if (key == "dur") {
        ok = reader.ReadDouble(&span.duration_seconds);
      } else if (key == "attrs") {
        if (!reader.Consume('{')) return malformed("bad attrs");
        if (!reader.Consume('}')) {
          while (true) {
            SpanAttr attr;
            if (!reader.ReadString(&attr.key) || !reader.Consume(':') ||
                !reader.ReadString(&attr.value)) {
              return malformed("bad attr");
            }
            span.attrs.push_back(std::move(attr));
            if (reader.Consume('}')) break;
            if (!reader.Consume(',')) return malformed("bad attrs");
          }
        }
      } else {
        return malformed("unknown key '" + key + "'");
      }
      if (!ok) return malformed("bad value for '" + key + "'");
    }
    if (!reader.AtEnd()) return malformed("trailing characters");
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace colt
