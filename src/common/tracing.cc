#include "common/tracing.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace colt {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double v, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_(WallTimer::Now()) {}

Tracer& Tracer::Default() {
  // One tracer per thread: the tracer's stack discipline (innermost-first
  // scope destruction) cannot hold across threads, so worker threads in
  // the task-parallel layer get a private, default-disabled instance —
  // their spans are inert unless a worker explicitly enables its own
  // tracer. The main thread's instance is the one harnesses export from.
  // By value (not the leaky-singleton idiom) so short-lived pool workers
  // release their instance at thread exit instead of leaking one each.
  static thread_local Tracer tracer;
  return tracer;
}

Tracer::Scope Tracer::StartSpan(std::string_view name,
                                std::string_view site) {
  if (!enabled_) return Scope();
  OpenSpan open;
  open.span.id = next_id_++;
  open.span.parent = open_.empty() ? 0 : open_.back().span.id;
  open.span.name.assign(name);
  open.span.site.assign(site);
  open.span.start_seconds = WallTimer::Now() - epoch_;
  open_.push_back(std::move(open));
  return Scope(this, open_.size() - 1);
}

void Tracer::Scope::AddAttr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  Span& span = tracer_->open_[depth_].span;
  span.attrs.push_back(SpanAttr{std::string(key), std::string(value)});
}

void Tracer::Scope::AddAttr(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  AddAttr(key, std::string_view(buf));
}

void Tracer::Scope::AddAttr(std::string_view key, int64_t value) {
  AddAttr(key, std::string_view(std::to_string(value)));
}

void Tracer::Scope::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  COLT_CHECK(depth_ + 1 == tracer->open_.size())
      << "span scopes must close innermost-first (open depth "
      << tracer->open_.size() << ", closing " << depth_ << ")";
  Span span = std::move(tracer->open_.back().span);
  tracer->open_.pop_back();
  span.duration_seconds =
      WallTimer::Now() - tracer->epoch_ - span.start_seconds;
  tracer->Sink(std::move(span));
}

void Tracer::Sink(Span span) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[ring_start_] = std::move(span);
  ring_start_ = (ring_start_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<Span> Tracer::Spans() const {
  std::vector<Span> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_start_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  ring_.clear();
  ring_start_ = 0;
  dropped_ = 0;
  epoch_ = WallTimer::Now();
}

std::string Tracer::ToJsonl() const {
  std::string out;
  for (const Span& span : Spans()) {
    out += "{\"id\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    out += ",\"name\":";
    AppendEscaped(span.name, &out);
    out += ",\"site\":";
    AppendEscaped(span.site, &out);
    out += ",\"start\":";
    AppendDouble(span.start_seconds, &out);
    out += ",\"dur\":";
    AppendDouble(span.duration_seconds, &out);
    out += ",\"attrs\":{";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) out += ",";
      AppendEscaped(span.attrs[i].key, &out);
      out += ":";
      AppendEscaped(span.attrs[i].value, &out);
    }
    out += "}}\n";
  }
  return out;
}

std::string Tracer::ToChromeTrace() const {
  // Complete ("X") events; timestamps in microseconds as about:tracing
  // expects. All spans of one tracer share one process/thread id — each
  // thread records into its own Default() instance (per-worker-buffer
  // rule, DESIGN.md §10) — so nesting renders from the time ranges alone.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : Spans()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendEscaped(span.name, &out);
    out += ",\"cat\":";
    AppendEscaped(span.site.empty() ? std::string("colt") : span.site, &out);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    AppendDouble(span.start_seconds * 1e6, &out);
    out += ",\"dur\":";
    AppendDouble(span.duration_seconds * 1e6, &out);
    out += ",\"args\":{\"id\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    for (const SpanAttr& attr : span.attrs) {
      out += ",";
      AppendEscaped(attr.key, &out);
      out += ":";
      AppendEscaped(attr.value, &out);
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

Result<std::vector<Span>> Tracer::FromJsonl(std::string_view text) {
  std::vector<Span> spans;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    const auto malformed = [&](const std::string& why) {
      return Status::InvalidArgument("trace jsonl line " +
                                     std::to_string(line_no) + ": " + why);
    };
    // Hand-rolled scan over the exact shape ToJsonl writes.
    Span span;
    size_t i = 0;
    auto skip_ws = [&] {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    };
    auto consume = [&](char c) {
      skip_ws();
      if (i < line.size() && line[i] == c) {
        ++i;
        return true;
      }
      return false;
    };
    auto read_string = [&](std::string* out) {
      skip_ws();
      if (i >= line.size() || line[i] != '"') return false;
      ++i;
      out->clear();
      while (i < line.size() && line[i] != '"') {
        char c = line[i++];
        if (c == '\\' && i < line.size()) {
          const char esc = line[i++];
          if (esc == 'n') {
            c = '\n';
          } else if (esc == 'u') {
            if (i + 4 > line.size()) return false;
            const std::string hex(line.substr(i, 4));
            i += 4;
            c = static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          } else {
            c = esc;
          }
        }
        out->push_back(c);
      }
      if (i >= line.size()) return false;
      ++i;
      return true;
    };
    auto read_double = [&](double* out) {
      skip_ws();
      // std::string_view is not NUL-terminated; bound the strtod copy.
      const std::string buf(line.substr(i, std::min<size_t>(40, line.size() - i)));
      char* endp = nullptr;
      *out = std::strtod(buf.c_str(), &endp);
      if (endp == buf.c_str()) return false;
      i += static_cast<size_t>(endp - buf.c_str());
      return true;
    };
    if (!consume('{')) return malformed("expected object");
    bool first = true;
    while (!consume('}')) {
      if (!first && !consume(',')) return malformed("expected ','");
      first = false;
      std::string key;
      if (!read_string(&key) || !consume(':')) return malformed("bad key");
      bool ok = true;
      double num = 0.0;
      if (key == "id") {
        ok = read_double(&num);
        span.id = static_cast<int64_t>(num);
      } else if (key == "parent") {
        ok = read_double(&num);
        span.parent = static_cast<int64_t>(num);
      } else if (key == "name") {
        ok = read_string(&span.name);
      } else if (key == "site") {
        ok = read_string(&span.site);
      } else if (key == "start") {
        ok = read_double(&span.start_seconds);
      } else if (key == "dur") {
        ok = read_double(&span.duration_seconds);
      } else if (key == "attrs") {
        if (!consume('{')) return malformed("bad attrs");
        if (!consume('}')) {
          while (true) {
            SpanAttr attr;
            if (!read_string(&attr.key) || !consume(':') ||
                !read_string(&attr.value)) {
              return malformed("bad attr");
            }
            span.attrs.push_back(std::move(attr));
            if (consume('}')) break;
            if (!consume(',')) return malformed("bad attrs");
          }
        }
      } else {
        return malformed("unknown key '" + key + "'");
      }
      if (!ok) return malformed("bad value for '" + key + "'");
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace colt
