#include "common/epoch.h"

#include "common/logging.h"

namespace colt {

namespace {

/// Thread-local slot handle: claims a slot on the thread's first pin and
/// releases it when the thread exits, so pool threads from successive
/// ThreadPool instances recycle the fixed slot array. `depth` makes
/// EpochGuard reentrant (only the outermost guard touches the slot).
struct ThreadSlotHandle {
  EpochManager::Slot* slot = nullptr;
  int depth = 0;

  ~ThreadSlotHandle() {
    if (slot != nullptr) {
      slot->state.store(0, std::memory_order_release);
      slot->claimed.store(false, std::memory_order_release);
    }
  }
};

thread_local ThreadSlotHandle t_slot;

}  // namespace

EpochManager::EpochManager() = default;

EpochManager& EpochManager::Global() {
  // Leaky singleton: the manager must outlive every thread that might
  // still unpin during static destruction (same pattern as
  // MetricsRegistry::Default).
  static EpochManager* const manager = new EpochManager();
  return *manager;
}

EpochManager::Slot* EpochManager::ClaimSlot() {
  if (t_slot.slot != nullptr) return t_slot.slot;
  for (int i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (slots_[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      t_slot.slot = &slots_[i];
      return t_slot.slot;
    }
  }
  COLT_CHECK(false) << "EpochManager: more than " << kMaxThreads
                    << " concurrent threads";
  return nullptr;
}

void EpochManager::RetireRaw(void* p, void (*deleter)(void*)) {
  if (p == nullptr) return;
  const uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  {
    MutexLock lock(&limbo_mu_);
    limbo_.push_back(LimboEntry{p, deleter, epoch});
  }
}

int64_t EpochManager::TryReclaim() {
  const uint64_t current = global_epoch_.load(std::memory_order_seq_cst);
  // The epoch may advance only when every pinned reader has observed the
  // current value; a stale pin blocks advancement (and thus reclamation)
  // but never safety.
  for (const Slot& slot : slots_) {
    const uint64_t state = slot.state.load(std::memory_order_seq_cst);
    if ((state & 1) != 0 && (state >> 1) != current) return 0;
  }
  uint64_t expected = current;
  if (!global_epoch_.compare_exchange_strong(expected, current + 1,
                                             std::memory_order_seq_cst)) {
    return 0;  // another reclaimer advanced concurrently; let it free
  }
  // Entries retired at epoch R are reclaimable once current + 1 >= R + 2.
  std::vector<LimboEntry> ready;
  {
    MutexLock lock(&limbo_mu_);
    size_t keep = 0;
    for (size_t i = 0; i < limbo_.size(); ++i) {
      if (limbo_[i].epoch + 2 <= current + 1) {
        ready.push_back(limbo_[i]);
      } else {
        limbo_[keep++] = limbo_[i];
      }
    }
    limbo_.resize(keep);
  }
  for (const LimboEntry& entry : ready) entry.deleter(entry.object);
  reclaimed_total_.fetch_add(static_cast<int64_t>(ready.size()),
                             std::memory_order_relaxed);
  return static_cast<int64_t>(ready.size());
}

int64_t EpochManager::ReclaimAll() {
  int64_t freed = 0;
  // Two successful advances age out every quiescent entry; keep going
  // while progress is made and work remains.
  for (int i = 0; i < 4 && limbo_size() > 0; ++i) {
    const uint64_t before = global_epoch();
    freed += TryReclaim();
    if (global_epoch() == before) break;  // pinned reader blocks advance
  }
  return freed;
}

int64_t EpochManager::limbo_size() const {
  MutexLock lock(&limbo_mu_);
  return static_cast<int64_t>(limbo_.size());
}

bool EpochManager::HasPinnedReaders() const {
  for (const Slot& slot : slots_) {
    if ((slot.state.load(std::memory_order_acquire) & 1) != 0) return true;
  }
  return false;
}

EpochGuard::EpochGuard() : slot_(nullptr) {
  EpochManager& manager = EpochManager::Global();
  EpochManager::Slot* slot = manager.ClaimSlot();
  if (++t_slot.depth > 1) return;  // nested: outer guard owns the pin
  slot_ = slot;
  // seq_cst orders the pin before the epoch re-check in TryReclaim: once
  // this store is visible, no advance can pass our pinned epoch.
  slot_->state.store((manager.global_epoch() << 1) | 1,
                     std::memory_order_seq_cst);
}

EpochGuard::~EpochGuard() {
  --t_slot.depth;
  if (slot_ != nullptr) slot_->state.store(0, std::memory_order_release);
}

}  // namespace colt
