#ifndef COLT_COMMON_PROVENANCE_H_
#define COLT_COMMON_PROVENANCE_H_

/// Decision-provenance flight recorder (DESIGN.md §13).
///
/// The tuning pipeline can already report *what* it measured (metrics,
/// tracing); this layer records *why* it acted: every consequential
/// decision — gain-level promotion/demotion, knapsack solve, what-if
/// estimate, install/drop/quarantine, emergency eviction — is emitted as
/// a typed event into a ring buffer owned by the tuner. Events carry the
/// epoch, the query sequence number and a monotonic decision id, export
/// as JSONL and Prometheus text, persist through the checkpoint layer,
/// and replay into per-index decision timelines (tools/colt_explain).
///
/// Determinism contract: the recorder is single-writer like the metrics
/// registry. All pipeline emission happens on the owner thread in
/// replay-stable order (worker-computed what-if gains are recorded on
/// the owner in candidate order, DESIGN.md §10), so the default event
/// stream is byte-identical across `num_workers` and
/// `whatif_cache_bytes` settings. Worker-side buffers, when used, fold
/// in via MergeFrom() at epoch boundaries in deterministic task order.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/persist/serializer.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace colt {

/// Whether the provenance layer is compiled in. Builds configured with
/// -DCOLT_DISABLE_PROVENANCE=ON never construct a recorder, so every
/// emission site reduces to one null-pointer test; the recorder class
/// itself stays link-compatible either way (same policy as metrics).
#ifdef COLT_DISABLE_PROVENANCE
inline constexpr bool kProvenanceCompiledIn = false;
#else
inline constexpr bool kProvenanceCompiledIn = true;
#endif

/// One typed key/value annotation on a provenance event.
struct ProvenanceAttr {
  enum class Kind : uint8_t { kInt = 0, kDouble = 1, kString = 2 };

  std::string key;
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;

  bool operator==(const ProvenanceAttr&) const = default;
};

/// One recorded decision. `id` is the monotonic decision id assigned when
/// the event is sunk into the recorder; `epoch`/`query_seq` come from the
/// recorder's context (set by ColtTuner at the top of OnQuery). `index`
/// and `cluster` are -1 when the event has no single subject.
struct ProvenanceEvent {
  int64_t id = 0;
  int64_t epoch = 0;
  int64_t query_seq = -1;
  std::string name;  // dotted snake_case, e.g. "scheduler.install"
  int64_t index = -1;
  int64_t cluster = -1;
  std::vector<ProvenanceAttr> attrs;

  /// The attr named `key`, or nullptr.
  const ProvenanceAttr* FindAttr(std::string_view key) const;

  bool operator==(const ProvenanceEvent&) const = default;
};

/// Ring-buffered single-writer event log. Decision ids keep counting when
/// the ring wraps, so a drained stream always exposes whether (and how
/// many) events were dropped.
class ProvenanceRecorder {
 public:
  /// Builder returned by RecordEvent(); the event is sunk into the
  /// recorder when the builder goes out of scope (end of the full
  /// expression at a typical call site). Inert when detached.
  class EventBuilder {
   public:
    EventBuilder(const EventBuilder&) = delete;
    EventBuilder& operator=(const EventBuilder&) = delete;
    EventBuilder(EventBuilder&& other) noexcept;
    EventBuilder& operator=(EventBuilder&&) = delete;
    ~EventBuilder();

    EventBuilder& Index(int64_t id);
    EventBuilder& Cluster(int64_t id);
    EventBuilder& Attr(std::string_view key, int64_t value);
    EventBuilder& Attr(std::string_view key, int value) {
      return Attr(key, static_cast<int64_t>(value));
    }
    EventBuilder& Attr(std::string_view key, double value);
    EventBuilder& Attr(std::string_view key, std::string_view value);

   private:
    friend class ProvenanceRecorder;
    EventBuilder(ProvenanceRecorder* recorder, std::string_view name);

    ProvenanceRecorder* recorder_;  // null = inert
    ProvenanceEvent event_;
  };

  /// `capacity` is the maximum number of buffered events; the oldest are
  /// dropped (and counted) once it is exceeded. Clamped to at least 1.
  explicit ProvenanceRecorder(int64_t capacity);
  ProvenanceRecorder(const ProvenanceRecorder&) = delete;
  ProvenanceRecorder& operator=(const ProvenanceRecorder&) = delete;

  /// Stamps the context carried by subsequently recorded events.
  void SetContext(int64_t epoch, int64_t query_seq);

  /// Starts a new event; annotate via the returned builder. The event
  /// name must be a dotted snake_case string literal at the call site
  /// (enforced by colt_lint, same policy as metric names).
  /// Owner-only: the flight recorder is single-writer; workers return data
  /// and the owner records the decision (DESIGN.md §13).
  COLT_OWNER_ONLY EventBuilder RecordEvent(std::string_view name);

  /// Folds another recorder's buffered events into this one, re-stamping
  /// decision ids in this recorder's sequence. Call at epoch boundaries
  /// in deterministic task order (per-worker-buffer rule, DESIGN.md §10);
  /// `other` is left empty.
  COLT_OWNER_ONLY void MergeFrom(ProvenanceRecorder* other);

  /// Moves the buffered events out (oldest first). Lifetime counters and
  /// the id sequence survive, so a drained recorder keeps appending to
  /// the same logical stream.
  std::vector<ProvenanceEvent> Drain();

  /// Buffered events, oldest first.
  const std::deque<ProvenanceEvent>& events() const { return ring_; }
  int64_t capacity() const { return capacity_; }
  int64_t dropped() const { return dropped_; }
  /// Events recorded over the recorder's lifetime (buffered + dropped +
  /// drained).
  int64_t total_recorded() const { return next_id_; }
  int64_t epoch() const { return epoch_; }
  int64_t query_seq() const { return query_seq_; }
  /// Lifetime per-event-name counts (survive Drain()).
  const std::map<std::string, int64_t>& counts_by_name() const {
    return counts_;
  }

  /// Prometheus text exposition of the lifetime event counts:
  /// colt_provenance_events_total{event="..."} plus the dropped counter.
  std::string PrometheusText() const;

  /// Checkpoint integration (DESIGN.md §12): serializes the id sequence,
  /// lifetime counts and buffered ring so a recovered tuner resumes the
  /// same decision-id stream.
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  void Sink(ProvenanceEvent event);

  int64_t capacity_;
  int64_t epoch_ = 0;
  int64_t query_seq_ = -1;
  int64_t next_id_ = 0;
  int64_t dropped_ = 0;
  std::deque<ProvenanceEvent> ring_;
  std::map<std::string, int64_t> counts_;
};

/// JSONL export: one event object per line, in stream order. Integers
/// round-trip exactly; a double attr whose value is integral re-parses as
/// an int attr of equal value (the kinds normalize, the numbers do not
/// change).
std::string ProvenanceToJsonl(const std::vector<ProvenanceEvent>& events);
Result<std::vector<ProvenanceEvent>> ProvenanceFromJsonl(
    std::string_view text);

/// The sub-stream of events about one index (matching `index`), in
/// stream order — the raw material of a per-index decision timeline.
std::vector<ProvenanceEvent> BuildIndexTimeline(
    const std::vector<ProvenanceEvent>& events, int64_t index);

/// Replayed state of one index as of the end of epoch `epoch` (all
/// events with event.epoch <= epoch applied in stream order).
struct IndexEpochState {
  bool materialized = false;  // installed and not since dropped
  bool hot = false;           // promoted to level-2 profiling
  int64_t last_action_id = -1;
  std::string last_action;  // name of the deciding install/drop event
  std::string last_cause;   // its "cause" attr, if any
  int64_t last_action_epoch = -1;
  /// Net benefit the SelfOrganizer attributed at the most recent
  /// schedule decision covering this index (0 when never scheduled).
  double last_net_benefit = 0.0;
};

/// Answers "why does index I exist / not exist at epoch E" by replaying
/// the event stream. Events after `epoch` are ignored; pass the last
/// epoch in the stream (or INT64_MAX) for the end-of-run verdict.
IndexEpochState ExplainIndexAtEpoch(const std::vector<ProvenanceEvent>& events,
                                    int64_t index, int64_t epoch);

/// Human-readable rendering of one event / of a timeline, used by
/// tools/colt_explain.
std::string FormatProvenanceEvent(const ProvenanceEvent& event);
std::string FormatIndexTimeline(const std::vector<ProvenanceEvent>& timeline);

}  // namespace colt

#endif  // COLT_COMMON_PROVENANCE_H_
