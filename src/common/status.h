#ifndef COLT_COMMON_STATUS_H_
#define COLT_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace colt {

/// Machine-readable classification of an error. Mirrors the usual
/// database-engine convention (Arrow/RocksDB style) of status codes plus a
/// human-readable message, instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
};

/// Returns a stable, human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation). Functions in this codebase return Status (or Result<T>)
/// rather than throwing. [[nodiscard]] makes the compiler reject silently
/// dropped errors; intentional drops must go through ColtIgnoreStatus().
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// absl::StatusOr / arrow::Result.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  /// `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : value_(std::move(status)) {
    assert(!std::get<Status>(value_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Explicitly discards a Status or Result<T> whose failure is intentionally
/// ignored. The only sanctioned way to drop a [[nodiscard]] value: unlike a
/// bare `(void)` cast it is greppable, self-documenting, and enforced by
/// tools/colt_lint (rule `status-discard`). Call sites should carry a short
/// comment saying why the error does not matter.
template <typename T>
inline void ColtIgnoreStatus(T&& /*status_or_result*/) {}

/// Propagates a non-OK status to the caller.
#define COLT_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::colt::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define COLT_ASSIGN_OR_RETURN(lhs, expr)    \
  auto COLT_CONCAT_(_res, __LINE__) = (expr);           \
  if (!COLT_CONCAT_(_res, __LINE__).ok())               \
    return COLT_CONCAT_(_res, __LINE__).status();       \
  lhs = std::move(COLT_CONCAT_(_res, __LINE__)).value()

#define COLT_CONCAT_IMPL_(a, b) a##b
#define COLT_CONCAT_(a, b) COLT_CONCAT_IMPL_(a, b)

}  // namespace colt

#endif  // COLT_COMMON_STATUS_H_
