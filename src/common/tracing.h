#ifndef COLT_COMMON_TRACING_H_
#define COLT_COMMON_TRACING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace colt {

/// One key=value span annotation. Values are stored as strings; numeric
/// helpers format on attach.
struct SpanAttr {
  std::string key;
  std::string value;
};

/// A finished span: one timed region of the tuning pipeline. Times are
/// seconds relative to the tracer's epoch (construction / last Clear), so
/// dumps from one run are directly comparable.
struct Span {
  int64_t id = 0;
  /// Enclosing span's id; 0 for roots.
  int64_t parent = 0;
  std::string name;
  /// Component site, e.g. "core/colt" — groups spans by subsystem.
  std::string site;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::vector<SpanAttr> attrs;
};

/// Per-query structured span tracer with a fixed-capacity ring-buffer
/// sink: the newest `capacity` finished spans are retained, older ones are
/// dropped (counted, never resized). Spans nest through RAII scopes — the
/// innermost open scope is the parent of the next StartSpan.
///
/// Disabled by default; a disabled tracer never reads the clock and
/// returns inert scopes, following the fault-injector pattern.
///
/// Thread-compatibility: a tracer is single-writer, not synchronized. The
/// per-worker-buffer rule (DESIGN.md §10) applies: every thread records
/// into its own Default() instance, so instrumented code may run on pool
/// workers without locks; worker instances stay disabled (and therefore
/// empty) unless a worker opts in explicitly.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 8192);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The calling thread's tracer (thread-local). The main thread's
  /// instance is the one the tuning stack configures and harnesses export
  /// from; pool workers see a private, default-disabled instance — which
  /// is what makes this Default() (unlike MetricsRegistry::Default())
  /// safe to touch from worker tasks.
  COLT_WORKER_SAFE static Tracer& Default();

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// RAII handle for an open span; finishes (and sinks) it on destruction.
  /// Scopes must be destroyed in reverse order of creation (stack
  /// discipline), which plain lexical scoping guarantees.
  class Scope {
   public:
    Scope() = default;
    Scope(Scope&& other) noexcept { *this = std::move(other); }
    Scope& operator=(Scope&& other) noexcept {
      End();
      tracer_ = other.tracer_;
      depth_ = other.depth_;
      other.tracer_ = nullptr;
      return *this;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { End(); }

    /// Attaches key=value to the open span (no-op on inert scopes).
    void AddAttr(std::string_view key, std::string_view value);
    void AddAttr(std::string_view key, double value);
    void AddAttr(std::string_view key, int64_t value);

    /// Finishes the span now; later End()s are no-ops.
    void End();

   private:
    friend class Tracer;
    Scope(Tracer* tracer, size_t depth) : tracer_(tracer), depth_(depth) {}

    Tracer* tracer_ = nullptr;  // null = inert
    size_t depth_ = 0;
  };

  /// Opens a span named `name` under the innermost open span. Returns an
  /// inert scope when disabled.
  Scope StartSpan(std::string_view name, std::string_view site = {});

  /// Finished spans, oldest first (at most `capacity`).
  std::vector<Span> Spans() const;
  /// Spans evicted from the ring so far.
  int64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }

  /// Forgets all finished spans and restarts the clock epoch. Open spans
  /// survive (their times stay on the old epoch; avoid mixing).
  void Clear();

  /// One JSON object per line; parseable by FromJsonl.
  std::string ToJsonl() const;
  /// Chrome trace_event JSON ("X" complete events) for about:tracing /
  /// Perfetto.
  std::string ToChromeTrace() const;
  static Result<std::vector<Span>> FromJsonl(std::string_view text);

 private:
  void Sink(Span span);

  bool enabled_ = false;
  size_t capacity_;
  /// Ring of finished spans: ring_[(start_ + i) % size] for i < size.
  std::vector<Span> ring_;
  size_t ring_start_ = 0;
  int64_t dropped_ = 0;
  int64_t next_id_ = 1;
  double epoch_;
  /// Open-span stack (innermost last).
  struct OpenSpan {
    Span span;
  };
  std::vector<OpenSpan> open_;
};

}  // namespace colt

#endif  // COLT_COMMON_TRACING_H_
