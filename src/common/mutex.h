#ifndef COLT_COMMON_MUTEX_H_
#define COLT_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace colt {

/// Annotated mutex: a std::mutex carrying Clang Thread Safety Analysis
/// capability attributes, so members declared COLT_GUARDED_BY(mu_) are
/// checked at compile time under -Wthread-safety (the dedicated clang CI
/// build). The standard library's own mutex types ship without these
/// attributes on libstdc++, which is why the locked corners of this tree
/// (thread pool queue, logging sink) go through this wrapper instead.
///
/// This is a lock-discipline shim, not a concurrency primitive of its own:
/// it adds no behavior over std::mutex, and the determinism contract of
/// DESIGN.md §10 (results independent of scheduling) is still carried by
/// the pool's ordered joins and per-task RNG streams, never by locking.
class COLT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() COLT_ACQUIRE() { mu_.lock(); }
  void Unlock() COLT_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over a Mutex (the std::lock_guard shape, annotated as
/// a scoped capability so analysis knows the region it covers).
class COLT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) COLT_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() COLT_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* mu_;
};

/// Condition variable bound to colt::Mutex. Wait() takes the already-held
/// mutex (enforced by COLT_REQUIRES under analysis) and returns with it
/// held again; spurious wakeups are possible, so callers loop on their
/// predicate as usual.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) COLT_REQUIRES(mu) {
    // Adopt the caller's hold for the duration of the wait, then release
    // the std::unique_lock without unlocking — ownership stays with the
    // caller's scope (its MutexLock), exactly as the annotation promises.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace colt

#endif  // COLT_COMMON_MUTEX_H_
