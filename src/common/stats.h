#ifndef COLT_COMMON_STATS_H_
#define COLT_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace colt {

/// Numerically stable running mean/variance accumulator (Welford).
/// Used by the Profiler to maintain per-(index, cluster) gain statistics.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford / Chan).
  void Merge(const RunningStats& other);

  /// Discards all observations.
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than 2 observations.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Raw accumulator fields for bit-exact persistence round-trips.
  double raw_mean() const { return mean_; }
  double raw_m2() const { return m2_; }
  void Restore(int64_t count, double mean, double m2) {
    count_ = count;
    mean_ = mean;
    m2_ = m2;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Requires 0 < p < 1.
double InverseNormalCdf(double p);

/// Two-sided Student-t critical value for the given confidence level
/// (e.g. 0.90) and degrees of freedom df >= 1. Exact table for small df,
/// Hill's asymptotic expansion beyond.
double StudentTCritical(double confidence, int64_t df);

/// A CLT-style confidence interval for a population mean.
struct ConfidenceInterval {
  double low = 0.0;
  double high = 0.0;
  /// Width high - low.
  double width() const { return high - low; }
  bool Contains(double x) const { return x >= low && x <= high; }
};

/// Computes a two-sided Student-t confidence interval for the mean from
/// running statistics. With fewer than 2 observations the interval is
/// [-inf, +inf] conceptually; we return a very wide interval around the
/// mean (ex: +/- kUnknownHalfWidth) so callers remain conservative.
ConfidenceInterval MeanConfidenceInterval(const RunningStats& stats,
                                          double confidence);

/// Half-width used when an interval cannot be estimated (n < 2).
inline constexpr double kUnknownHalfWidth = 1e18;

/// First-order exponential smoothing y_t = a*x_t + (1-a)*y_{t-1}.
/// The Self-Organizer smooths crude BenefitC estimates across epochs with
/// this filter before clustering them into hot / cold groups.
class ExponentialSmoother {
 public:
  explicit ExponentialSmoother(double alpha) : alpha_(alpha) {}

  /// Feeds one observation and returns the new smoothed value.
  double Update(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  double alpha() const { return alpha_; }

  /// Restores a persisted filter state (alpha comes from construction).
  void Restore(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Result of an exact 1-D two-means split.
struct TwoMeansSplit {
  /// Values >= threshold belong to the top cluster.
  double threshold = 0.0;
  /// Number of elements in the top (larger-valued) cluster.
  size_t top_count = 0;
  /// Total within-cluster sum of squared deviations of the best split.
  double within_ss = 0.0;
};

/// Exact minimum-variance split of `values` into two clusters by a
/// threshold (1-D 2-means, solved by scanning all split points of the
/// sorted sequence). Requires values.size() >= 1; with a single value the
/// top cluster contains it. Ties are broken toward the smaller top cluster.
TwoMeansSplit ComputeTwoMeansSplit(std::vector<double> values);

}  // namespace colt

#endif  // COLT_COMMON_STATS_H_
