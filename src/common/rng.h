#ifndef COLT_COMMON_RNG_H_
#define COLT_COMMON_RNG_H_

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace colt {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All randomized components of the system (data generation, workload
/// generation, profiler sampling) draw from explicitly seeded Rng instances
/// so that every experiment is exactly reproducible. We avoid <random>
/// engines for cross-platform bit-for-bit determinism of the *distributions*
/// as well as the engine.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds the generator using splitmix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n) {
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi) {
    return lo + NextDouble() * (hi - lo);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Samples an index according to non-negative `weights` (need not sum
  /// to 1). Requires a positive total weight.
  size_t NextWeighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    assert(total > 0);
    double x = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Spawns an independent child generator; deterministic given this
  /// generator's state.
  Rng Fork() { return Rng(Next() ^ 0x5deece66dULL); }

  /// Internal xoshiro256** state, for crash-safe persistence. A generator
  /// restored with set_state(state()) continues the exact same stream.
  std::array<uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// Zipf(s, n) sampler over {0, ..., n-1} using the rejection-inversion
/// method of Hörmann & Derflinger; O(1) per sample after O(1) setup.
/// Skew s >= 0 (s = 0 degenerates to uniform).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew) : n_(n), s_(skew) {
    assert(n >= 1);
    if (s_ < 1e-9) s_ = 1e-9;  // avoid the s == 1 / s == 0 singularities
    if (std::fabs(s_ - 1.0) < 1e-9) s_ = 1.0 + 1e-9;
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n_) + 0.5);
    dist_range_ = h_n_ - h_x1_;
  }

  size_t Sample(Rng& rng) const {
    for (;;) {
      const double u = h_x1_ + rng.NextDouble() * dist_range_;
      const double x = HInv(u);
      size_t k = static_cast<size_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      const double kd = static_cast<double>(k);
      if (kd - x <= 0.5 || u >= H(kd + 0.5) - std::pow(kd, -s_)) {
        return k - 1;
      }
    }
  }

 private:
  double H(double x) const {
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
  }
  double HInv(double u) const {
    return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
  }

  size_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double dist_range_;
};

}  // namespace colt

#endif  // COLT_COMMON_RNG_H_
