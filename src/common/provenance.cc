#include "common/provenance.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/json_util.h"

namespace colt {

namespace {

/// Section tag: "PROV" little-endian.
constexpr uint32_t kProvenanceSectionTag = 0x564F5250;

}  // namespace

const ProvenanceAttr* ProvenanceEvent::FindAttr(std::string_view key) const {
  for (const ProvenanceAttr& attr : attrs) {
    if (attr.key == key) return &attr;
  }
  return nullptr;
}

ProvenanceRecorder::EventBuilder::EventBuilder(ProvenanceRecorder* recorder,
                                               std::string_view name)
    : recorder_(recorder) {
  event_.name.assign(name);
}

ProvenanceRecorder::EventBuilder::EventBuilder(EventBuilder&& other) noexcept
    : recorder_(other.recorder_), event_(std::move(other.event_)) {
  other.recorder_ = nullptr;
}

ProvenanceRecorder::EventBuilder::~EventBuilder() {
  if (recorder_ != nullptr) recorder_->Sink(std::move(event_));
}

ProvenanceRecorder::EventBuilder& ProvenanceRecorder::EventBuilder::Index(
    int64_t id) {
  event_.index = id;
  return *this;
}

ProvenanceRecorder::EventBuilder& ProvenanceRecorder::EventBuilder::Cluster(
    int64_t id) {
  event_.cluster = id;
  return *this;
}

ProvenanceRecorder::EventBuilder& ProvenanceRecorder::EventBuilder::Attr(
    std::string_view key, int64_t value) {
  ProvenanceAttr attr;
  attr.key.assign(key);
  attr.kind = ProvenanceAttr::Kind::kInt;
  attr.int_value = value;
  event_.attrs.push_back(std::move(attr));
  return *this;
}

ProvenanceRecorder::EventBuilder& ProvenanceRecorder::EventBuilder::Attr(
    std::string_view key, double value) {
  ProvenanceAttr attr;
  attr.key.assign(key);
  attr.kind = ProvenanceAttr::Kind::kDouble;
  attr.double_value = value;
  event_.attrs.push_back(std::move(attr));
  return *this;
}

ProvenanceRecorder::EventBuilder& ProvenanceRecorder::EventBuilder::Attr(
    std::string_view key, std::string_view value) {
  ProvenanceAttr attr;
  attr.key.assign(key);
  attr.kind = ProvenanceAttr::Kind::kString;
  attr.string_value.assign(value);
  event_.attrs.push_back(std::move(attr));
  return *this;
}

ProvenanceRecorder::ProvenanceRecorder(int64_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

void ProvenanceRecorder::SetContext(int64_t epoch, int64_t query_seq) {
  epoch_ = epoch;
  query_seq_ = query_seq;
}

ProvenanceRecorder::EventBuilder ProvenanceRecorder::RecordEvent(
    std::string_view name) {
  return EventBuilder(this, name);
}

void ProvenanceRecorder::Sink(ProvenanceEvent event) {
  event.id = next_id_++;
  event.epoch = epoch_;
  event.query_seq = query_seq_;
  ++counts_[event.name];
  ring_.push_back(std::move(event));
  while (static_cast<int64_t>(ring_.size()) > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

void ProvenanceRecorder::MergeFrom(ProvenanceRecorder* other) {
  if (other == nullptr) return;
  for (ProvenanceEvent& event : other->ring_) {
    // Re-stamp the id into this recorder's sequence; the event keeps the
    // epoch/query context it was recorded under.
    event.id = next_id_++;
    ++counts_[event.name];
    ring_.push_back(std::move(event));
    while (static_cast<int64_t>(ring_.size()) > capacity_) {
      ring_.pop_front();
      ++dropped_;
    }
  }
  dropped_ += other->dropped_;
  other->ring_.clear();
  other->counts_.clear();
  other->next_id_ = 0;
  other->dropped_ = 0;
}

std::vector<ProvenanceEvent> ProvenanceRecorder::Drain() {
  std::vector<ProvenanceEvent> out(std::make_move_iterator(ring_.begin()),
                                   std::make_move_iterator(ring_.end()));
  ring_.clear();
  return out;
}

std::string ProvenanceRecorder::PrometheusText() const {
  std::string out;
  out += "# TYPE colt_provenance_events_total counter\n";
  for (const auto& [name, count] : counts_) {
    out += "colt_provenance_events_total{event=";
    json::AppendString(name, &out);
    out += "} ";
    out += std::to_string(count);
    out += "\n";
  }
  out += "# TYPE colt_provenance_dropped_total counter\n";
  out += "colt_provenance_dropped_total ";
  out += std::to_string(dropped_);
  out += "\n";
  return out;
}

void ProvenanceRecorder::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kProvenanceSectionTag);
  writer->WriteI64(epoch_);
  writer->WriteI64(query_seq_);
  writer->WriteI64(next_id_);
  writer->WriteI64(dropped_);
  writer->WriteU64(counts_.size());
  for (const auto& [name, count] : counts_) {
    writer->WriteString(name);
    writer->WriteI64(count);
  }
  writer->WriteU64(ring_.size());
  for (const ProvenanceEvent& event : ring_) {
    writer->WriteI64(event.id);
    writer->WriteI64(event.epoch);
    writer->WriteI64(event.query_seq);
    writer->WriteString(event.name);
    writer->WriteI64(event.index);
    writer->WriteI64(event.cluster);
    writer->WriteU64(event.attrs.size());
    for (const ProvenanceAttr& attr : event.attrs) {
      writer->WriteString(attr.key);
      writer->WriteU32(static_cast<uint32_t>(attr.kind));
      switch (attr.kind) {
        case ProvenanceAttr::Kind::kInt:
          writer->WriteI64(attr.int_value);
          break;
        case ProvenanceAttr::Kind::kDouble:
          writer->WriteDouble(attr.double_value);
          break;
        case ProvenanceAttr::Kind::kString:
          writer->WriteString(attr.string_value);
          break;
      }
    }
  }
}

Status ProvenanceRecorder::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kProvenanceSectionTag));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&epoch_));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&query_seq_));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&next_id_));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&dropped_));
  uint64_t count_entries = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&count_entries));
  counts_.clear();
  for (uint64_t i = 0; i < count_entries; ++i) {
    std::string name;
    int64_t count = 0;
    COLT_RETURN_IF_ERROR(reader->ReadString(&name));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&count));
    counts_[std::move(name)] = count;
  }
  uint64_t event_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&event_count));
  ring_.clear();
  for (uint64_t i = 0; i < event_count; ++i) {
    ProvenanceEvent event;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&event.id));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&event.epoch));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&event.query_seq));
    COLT_RETURN_IF_ERROR(reader->ReadString(&event.name));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&event.index));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&event.cluster));
    uint64_t attr_count = 0;
    COLT_RETURN_IF_ERROR(reader->ReadU64(&attr_count));
    for (uint64_t j = 0; j < attr_count; ++j) {
      ProvenanceAttr attr;
      uint32_t kind = 0;
      COLT_RETURN_IF_ERROR(reader->ReadString(&attr.key));
      COLT_RETURN_IF_ERROR(reader->ReadU32(&kind));
      if (kind > static_cast<uint32_t>(ProvenanceAttr::Kind::kString)) {
        return Status::InvalidArgument("provenance attr kind " +
                                       std::to_string(kind));
      }
      attr.kind = static_cast<ProvenanceAttr::Kind>(kind);
      switch (attr.kind) {
        case ProvenanceAttr::Kind::kInt:
          COLT_RETURN_IF_ERROR(reader->ReadI64(&attr.int_value));
          break;
        case ProvenanceAttr::Kind::kDouble:
          COLT_RETURN_IF_ERROR(reader->ReadDouble(&attr.double_value));
          break;
        case ProvenanceAttr::Kind::kString:
          COLT_RETURN_IF_ERROR(reader->ReadString(&attr.string_value));
          break;
      }
      event.attrs.push_back(std::move(attr));
    }
    ring_.push_back(std::move(event));
  }
  // A restart may carry a smaller capacity; keep the newest events.
  while (static_cast<int64_t>(ring_.size()) > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  return Status::OK();
}

std::string ProvenanceToJsonl(const std::vector<ProvenanceEvent>& events) {
  std::string out;
  for (const ProvenanceEvent& event : events) {
    out += "{\"id\":";
    json::AppendInt(event.id, &out);
    out += ",\"ep\":";
    json::AppendInt(event.epoch, &out);
    out += ",\"q\":";
    json::AppendInt(event.query_seq, &out);
    out += ",\"name\":";
    json::AppendString(event.name, &out);
    out += ",\"index\":";
    json::AppendInt(event.index, &out);
    out += ",\"cluster\":";
    json::AppendInt(event.cluster, &out);
    out += ",\"attrs\":{";
    for (size_t i = 0; i < event.attrs.size(); ++i) {
      const ProvenanceAttr& attr = event.attrs[i];
      if (i > 0) out += ",";
      json::AppendString(attr.key, &out);
      out += ":";
      switch (attr.kind) {
        case ProvenanceAttr::Kind::kInt:
          json::AppendInt(attr.int_value, &out);
          break;
        case ProvenanceAttr::Kind::kDouble:
          json::AppendDouble(attr.double_value, &out);
          break;
        case ProvenanceAttr::Kind::kString:
          json::AppendString(attr.string_value, &out);
          break;
      }
    }
    out += "}}\n";
  }
  return out;
}

Result<std::vector<ProvenanceEvent>> ProvenanceFromJsonl(
    std::string_view text) {
  std::vector<ProvenanceEvent> events;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line =
        json::StripLineEnding(text.substr(pos, end - pos));
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    const auto malformed = [&](const std::string& why) {
      return Status::InvalidArgument("provenance jsonl line " +
                                     std::to_string(line_no) + ": " + why);
    };
    json::Reader reader(line);
    if (!reader.Consume('{')) return malformed("expected object");
    ProvenanceEvent event;
    bool first = true;
    while (!reader.Consume('}')) {
      if (!first && !reader.Consume(',')) return malformed("expected ','");
      first = false;
      std::string key;
      if (!reader.ReadString(&key) || !reader.Consume(':')) {
        return malformed("expected key");
      }
      bool ok = true;
      if (key == "id") {
        ok = reader.ReadInt(&event.id);
      } else if (key == "ep") {
        ok = reader.ReadInt(&event.epoch);
      } else if (key == "q") {
        ok = reader.ReadInt(&event.query_seq);
      } else if (key == "name") {
        ok = reader.ReadString(&event.name);
      } else if (key == "index") {
        ok = reader.ReadInt(&event.index);
      } else if (key == "cluster") {
        ok = reader.ReadInt(&event.cluster);
      } else if (key == "attrs") {
        if (!reader.Consume('{')) return malformed("bad attrs");
        if (!reader.Consume('}')) {
          while (true) {
            ProvenanceAttr attr;
            if (!reader.ReadString(&attr.key) || !reader.Consume(':')) {
              return malformed("bad attr key");
            }
            std::string str;
            if (reader.ReadString(&str)) {
              attr.kind = ProvenanceAttr::Kind::kString;
              attr.string_value = std::move(str);
            } else {
              double num = 0.0;
              if (!reader.ReadDouble(&num)) return malformed("bad attr value");
              // Integral values normalize to int attrs (the writer emits
              // int attrs without a fractional part).
              if (std::nearbyint(num) == num && std::fabs(num) <= 9.0e15) {
                attr.kind = ProvenanceAttr::Kind::kInt;
                attr.int_value = static_cast<int64_t>(num);
              } else {
                attr.kind = ProvenanceAttr::Kind::kDouble;
                attr.double_value = num;
              }
            }
            event.attrs.push_back(std::move(attr));
            if (reader.Consume('}')) break;
            if (!reader.Consume(',')) return malformed("bad attrs");
          }
        }
      } else {
        return malformed("unknown key '" + key + "'");
      }
      if (!ok) return malformed("bad value for '" + key + "'");
    }
    if (!reader.AtEnd()) return malformed("trailing characters");
    if (event.name.empty()) return malformed("missing name");
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<ProvenanceEvent> BuildIndexTimeline(
    const std::vector<ProvenanceEvent>& events, int64_t index) {
  std::vector<ProvenanceEvent> out;
  for (const ProvenanceEvent& event : events) {
    if (event.index == index) out.push_back(event);
  }
  return out;
}

IndexEpochState ExplainIndexAtEpoch(const std::vector<ProvenanceEvent>& events,
                                    int64_t index, int64_t epoch) {
  IndexEpochState state;
  for (const ProvenanceEvent& event : events) {
    if (event.index != index || event.epoch > epoch) continue;
    if (event.name == "scheduler.install" || event.name == "scheduler.drop") {
      state.materialized = event.name == "scheduler.install";
      state.last_action = event.name;
      state.last_action_id = event.id;
      state.last_action_epoch = event.epoch;
      const ProvenanceAttr* cause = event.FindAttr("cause");
      state.last_cause = cause != nullptr ? cause->string_value : "";
    } else if (event.name == "self_organizer.hot_promote") {
      state.hot = true;
    } else if (event.name == "self_organizer.hot_demote") {
      state.hot = false;
    } else if (event.name == "self_organizer.schedule_install" ||
               event.name == "self_organizer.schedule_drop") {
      const ProvenanceAttr* nb = event.FindAttr("net_benefit");
      if (nb != nullptr) {
        state.last_net_benefit = nb->kind == ProvenanceAttr::Kind::kDouble
                                     ? nb->double_value
                                     : static_cast<double>(nb->int_value);
      }
    }
  }
  return state;
}

std::string FormatProvenanceEvent(const ProvenanceEvent& event) {
  char head[96];
  std::snprintf(head, sizeof(head), "#%lld ep%lld q%lld %s",
                static_cast<long long>(event.id),
                static_cast<long long>(event.epoch),
                static_cast<long long>(event.query_seq), event.name.c_str());
  std::string out = head;
  if (event.index >= 0) {
    out += " index=";
    out += std::to_string(event.index);
  }
  if (event.cluster >= 0) {
    out += " cluster=";
    out += std::to_string(event.cluster);
  }
  for (const ProvenanceAttr& attr : event.attrs) {
    out += " ";
    out += attr.key;
    out += "=";
    switch (attr.kind) {
      case ProvenanceAttr::Kind::kInt:
        out += std::to_string(attr.int_value);
        break;
      case ProvenanceAttr::Kind::kDouble: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%g", attr.double_value);
        out += buf;
        break;
      }
      case ProvenanceAttr::Kind::kString:
        out += attr.string_value;
        break;
    }
  }
  return out;
}

std::string FormatIndexTimeline(const std::vector<ProvenanceEvent>& timeline) {
  std::string out;
  for (const ProvenanceEvent& event : timeline) {
    out += FormatProvenanceEvent(event);
    out += "\n";
  }
  return out;
}

}  // namespace colt
