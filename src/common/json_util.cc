#include "common/json_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace colt {
namespace json {

void AppendString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double v, std::string* out) {
  char buf[40];
  // %.17g round-trips every finite double exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendInt(int64_t v, std::string* out) {
  *out += std::to_string(v);
}

void AppendIntArray(const std::vector<int64_t>& values, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendInt(values[i], out);
  }
  out->push_back(']');
}

void AppendDoubleArray(const std::vector<double>& values, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendDouble(values[i], out);
  }
  out->push_back(']');
}

std::string_view StripLineEnding(std::string_view line) {
  while (!line.empty()) {
    const char c = line.back();
    if (c != ' ' && c != '\t' && c != '\r') break;
    line.remove_suffix(1);
  }
  return line;
}

bool Reader::AtEnd() {
  SkipSpace();
  return pos_ >= text_.size();
}

bool Reader::Consume(char c) {
  SkipSpace();
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool Reader::ReadString(std::string* out) {
  SkipSpace();
  if (pos_ >= text_.size() || text_[pos_] != '"') return false;
  ++pos_;
  out->clear();
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_++];
    if (c == '\\' && pos_ < text_.size()) {
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n':
          c = '\n';
          break;
        case 't':
          c = '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          c = static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          break;
        }
        default:
          c = esc;
      }
    }
    out->push_back(c);
  }
  if (pos_ >= text_.size()) return false;
  ++pos_;  // closing quote
  return true;
}

bool Reader::ReadDouble(double* out) {
  SkipSpace();
  // A string_view is not NUL-terminated, so bound the strtod input with a
  // short copy instead of handing it the raw pointer.
  const std::string buf(
      text_.substr(pos_, std::min<size_t>(48, text_.size() - pos_)));
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) return false;
  pos_ += static_cast<size_t>(end - buf.c_str());
  return true;
}

bool Reader::ReadInt(int64_t* out) {
  double d = 0.0;
  if (!ReadDouble(&d)) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

bool Reader::ReadDoubleArray(std::vector<double>* out) {
  if (!Consume('[')) return false;
  out->clear();
  if (Consume(']')) return true;
  while (true) {
    double v = 0.0;
    if (!ReadDouble(&v)) return false;
    out->push_back(v);
    if (Consume(']')) return true;
    if (!Consume(',')) return false;
  }
}

bool Reader::ReadIntArray(std::vector<int64_t>* out) {
  std::vector<double> tmp;
  if (!ReadDoubleArray(&tmp)) return false;
  out->assign(tmp.begin(), tmp.end());
  return true;
}

void Reader::SkipSpace() {
  while (pos_ < text_.size() &&
         (text_[pos_] == ' ' || text_[pos_] == '\t')) {
    ++pos_;
  }
}

}  // namespace json
}  // namespace colt
