#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace colt {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
}

void RunningStats::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double InverseNormalCdf(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

namespace {

// Exact two-sided critical values for the most common confidence levels at
// very small df, where asymptotic expansions are inaccurate.
// Rows: df 1..4; columns: 80%, 90%, 95%, 99%.
constexpr double kSmallDfTable[4][4] = {
    {3.0777, 6.3138, 12.7062, 63.6567},
    {1.8856, 2.9200, 4.3027, 9.9248},
    {1.6377, 2.3534, 3.1824, 5.8409},
    {1.5332, 2.1318, 2.7764, 4.6041},
};

constexpr double kTableConfidences[4] = {0.80, 0.90, 0.95, 0.99};

}  // namespace

double StudentTCritical(double confidence, int64_t df) {
  assert(confidence > 0.0 && confidence < 1.0);
  assert(df >= 1);
  if (df <= 4) {
    // Interpolate in the table (linear in confidence) for small df.
    const double* row = kSmallDfTable[df - 1];
    if (confidence <= kTableConfidences[0]) return row[0];
    if (confidence >= kTableConfidences[3]) return row[3];
    for (int i = 0; i < 3; ++i) {
      if (confidence <= kTableConfidences[i + 1]) {
        const double f = (confidence - kTableConfidences[i]) /
                         (kTableConfidences[i + 1] - kTableConfidences[i]);
        return row[i] + f * (row[i + 1] - row[i]);
      }
    }
    return row[3];
  }
  // Hill's expansion of the inverse t CDF around the normal quantile.
  const double p = 0.5 + confidence / 2.0;  // two-sided -> upper tail point
  const double z = InverseNormalCdf(p);
  const double n = static_cast<double>(df);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  double t = z;
  t += (z3 + z) / (4.0 * n);
  t += (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n);
  t += (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * n * n * n);
  return t;
}

ConfidenceInterval MeanConfidenceInterval(const RunningStats& stats,
                                          double confidence) {
  ConfidenceInterval ci;
  if (stats.count() < 2) {
    ci.low = stats.mean() - kUnknownHalfWidth;
    ci.high = stats.mean() + kUnknownHalfWidth;
    return ci;
  }
  const double t = StudentTCritical(confidence, stats.count() - 1);
  const double half =
      t * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  ci.low = stats.mean() - half;
  ci.high = stats.mean() + half;
  return ci;
}

TwoMeansSplit ComputeTwoMeansSplit(std::vector<double> values) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  TwoMeansSplit best;
  if (n == 1) {
    best.threshold = values[0];
    best.top_count = 1;
    best.within_ss = 0.0;
    return best;
  }
  // Prefix sums for O(n) evaluation of all split points.
  std::vector<double> prefix(n + 1, 0.0), prefix_sq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + values[i];
    prefix_sq[i + 1] = prefix_sq[i] + values[i] * values[i];
  }
  auto ss = [&](size_t lo, size_t hi) {  // sum of squared deviations, [lo,hi)
    const double cnt = static_cast<double>(hi - lo);
    if (cnt <= 0) return 0.0;
    const double s = prefix[hi] - prefix[lo];
    const double sq = prefix_sq[hi] - prefix_sq[lo];
    return sq - s * s / cnt;
  };
  best.within_ss = std::numeric_limits<double>::infinity();
  // Split k: bottom cluster = values[0..k), top cluster = values[k..n).
  for (size_t k = 1; k < n; ++k) {
    if (values[k] == values[k - 1]) continue;  // not a realizable threshold
    const double total = ss(0, k) + ss(k, n);
    // "<" (not "<=") so ties favor the later (larger-k) split, i.e., the
    // smaller top cluster.
    if (total < best.within_ss ||
        (total == best.within_ss && n - k < best.top_count)) {
      best.within_ss = total;
      best.threshold = values[k];
      best.top_count = n - k;
    }
  }
  if (!std::isfinite(best.within_ss)) {
    // All values identical: everything is "top".
    best.within_ss = 0.0;
    best.threshold = values[0];
    best.top_count = n;
  }
  return best;
}

}  // namespace colt
