#ifndef COLT_COMMON_EPOCH_H_
#define COLT_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace colt {

/// Epoch-based memory reclamation (DESIGN.md §15).
///
/// The serving layer reads B+-trees from many threads while the owner
/// thread installs and drops indexes. Drops must not stall readers, so a
/// dropped structure is *retired*, not freed: ownership moves into a limbo
/// list stamped with the current global epoch, and the memory is released
/// only once every reader that could still hold a pointer into it has
/// moved on. Readers declare their liveness by pinning an `EpochGuard`
/// around each query.
///
/// The protocol is the classic three-generation scheme:
///  * Readers pin the current global epoch E into a per-thread slot
///    (lock-free: one seq_cst store) and unpin when done.
///  * Retire(p) stamps p with the global epoch at retirement time. The
///    object must already be unreachable from the published roots (the
///    caller unlinks first, retires second), so only readers pinned at
///    retirement time can still touch it.
///  * The epoch can advance from E to E+1 only when every pinned slot has
///    observed E. An object retired at epoch R is freed once the global
///    epoch reaches R+2: two advances prove every reader pinned at (or
///    before) R has unpinned.
///
/// A reader that pins a stale epoch (it read the counter just before an
/// advance) merely blocks further advances until it unpins — reclamation
/// is delayed, never unsafe. Unlink-before-retire means late pinners
/// cannot reach retired objects at all.
///
/// Reclamation runs only inside TryReclaim()/ReclaimAll(), which the
/// owner thread calls at publish boundaries (Database install/drop) and
/// teardown — readers never free, so the read path stays wait-free apart
/// from the version-spin in the tree itself.
class EpochManager {
 public:
  /// Per-thread pin state. Slots are claimed lazily on a thread's first
  /// pin and released when the thread exits, so short-lived pool threads
  /// recycle them.
  struct Slot {
    /// 0 = unpinned; otherwise (epoch << 1) | 1.
    std::atomic<uint64_t> state{0};
    /// Claimed by exactly one live thread at a time.
    std::atomic<bool> claimed{false};
  };

  static constexpr int kMaxThreads = 256;

  /// The process-wide manager. All trees and snapshots retire here;
  /// intentionally leaked so late-exiting threads can still unpin.
  COLT_THREAD_NEUTRAL static EpochManager& Global();

  EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Defers destruction of `p` until no pinned reader can reach it. The
  /// caller must have unlinked `p` from every published root first.
  /// Ownership transfers to the manager. Called by the owner thread
  /// (installs/drops happen there); thread-safe regardless.
  template <typename T>
  COLT_THREAD_NEUTRAL void Retire(T* p) {
    // Deleting is this manager's job, so shedding constness here is sound:
    // the object was handed over for destruction (readers may hold const
    // views of `p` until their epochs pass, but by then it is unlinked).
    using Mutable = std::remove_const_t<T>;
    // colt-lint: allow-next-line(worker-purity): ownership transfer for
    // deferred deletion, not a mutation of shared state.
    RetireRaw(const_cast<Mutable*>(p),
              [](void* q) { DeleteRetired(static_cast<Mutable*>(q)); });
  }

  /// Type-erased retire; `deleter` is invoked at reclaim time.
  COLT_THREAD_NEUTRAL void RetireRaw(void* p, void (*deleter)(void*));

  /// Advances the global epoch if every pinned reader has caught up and
  /// frees limbo entries that two advances have proven unreachable.
  /// Returns the number of objects freed. Safe to call from the owner
  /// thread at any time; never blocks readers.
  COLT_THREAD_NEUTRAL int64_t TryReclaim();

  /// Repeats TryReclaim until the limbo list is empty or pinned readers
  /// prevent progress; returns objects freed. With no pinned readers this
  /// frees everything (teardown, tests).
  COLT_THREAD_NEUTRAL int64_t ReclaimAll();

  /// Objects currently awaiting reclamation.
  int64_t limbo_size() const;

  /// Lifetime objects freed through the limbo list.
  int64_t reclaimed_total() const {
    return reclaimed_total_.load(std::memory_order_relaxed);
  }

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// True when any thread currently holds a pin (diagnostics/tests).
  bool HasPinnedReaders() const;

 private:
  friend class EpochGuard;

  template <typename T>
  static void DeleteRetired(T* p) {
    // colt-lint: allow-next-line(raw-new-delete): the limbo list is the
    // one place deferred destruction happens; it deletes objects whose
    // unique_ptr owners released them at retire time.
    delete p;
  }

  struct LimboEntry {
    void* object;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  /// Claims (or returns the already-claimed) slot for this thread.
  COLT_THREAD_NEUTRAL Slot* ClaimSlot();

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxThreads];
  std::atomic<int64_t> reclaimed_total_{0};

  mutable Mutex limbo_mu_;
  std::vector<LimboEntry> limbo_ COLT_GUARDED_BY(limbo_mu_);
};

/// RAII epoch pin: construction pins the calling thread into the current
/// epoch, destruction unpins. Pin around every traversal of an
/// epoch-protected structure (the Executor pins one guard per query).
/// Guards nest: only the outermost pin/unpin touches the slot, so helper
/// code may pin defensively without coordination.
class EpochGuard {
 public:
  COLT_THREAD_NEUTRAL EpochGuard();
  ~EpochGuard();
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  /// Null for nested guards (the outer guard owns the slot state).
  EpochManager::Slot* slot_;
};

}  // namespace colt

#endif  // COLT_COMMON_EPOCH_H_
