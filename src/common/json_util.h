#ifndef COLT_COMMON_JSON_UTIL_H_
#define COLT_COMMON_JSON_UTIL_H_

/// Minimal JSON writer/reader shared by the JSONL exporters (metrics,
/// tracing, provenance). The writer emits a deliberately small JSON
/// subset — flat objects with string, number, number-array and flat
/// string-map values — so the reader can stay dependency-free. Reader
/// and writer are inverses only over that subset: json::Reader
/// guarantees to parse exactly what the Append* helpers write.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace colt {
namespace json {

/// Appends `s` as a double-quoted JSON string, escaping quotes,
/// backslashes, newlines, tabs and other control characters.
void AppendString(const std::string& s, std::string* out);

/// Appends a double with %.17g, which round-trips every finite double.
void AppendDouble(double v, std::string* out);

void AppendInt(int64_t v, std::string* out);

void AppendIntArray(const std::vector<int64_t>& values, std::string* out);
void AppendDoubleArray(const std::vector<double>& values, std::string* out);

/// Strips trailing spaces, tabs and carriage returns (JSONL files may
/// arrive with CRLF endings) so per-line parsers can insist on AtEnd().
std::string_view StripLineEnding(std::string_view line);

/// Cursor-based reader for the subset written above. All Read* methods
/// skip leading whitespace; failures leave the cursor in an unspecified
/// position, so callers bail out on the first false.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  /// True once only whitespace remains.
  bool AtEnd();
  /// Consumes `c` (after whitespace) and returns true, or leaves the
  /// cursor unmoved and returns false.
  bool Consume(char c);
  bool ReadString(std::string* out);
  bool ReadDouble(double* out);
  bool ReadInt(int64_t* out);
  bool ReadDoubleArray(std::vector<double>* out);
  bool ReadIntArray(std::vector<int64_t>* out);

 private:
  void SkipSpace();

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace json
}  // namespace colt

#endif  // COLT_COMMON_JSON_UTIL_H_
