#include "common/fault_injector.h"

#include <array>
#include <utility>

namespace colt {

namespace {

/// FNV-1a over the site name; mixed with the config seed to key the
/// per-site streams.
uint64_t SiteHash(std::string_view site) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : site) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)) {
  enabled_ = config_.enabled && !config_.rules.empty();
  if (!enabled_) return;
  for (const auto& [site, rule] : config_.rules) {
    SiteState state;
    state.rule = rule;
    state.rng.Seed(config_.seed ^ SiteHash(site));
    sites_.emplace(site, std::move(state));
  }
}

FaultInjector::SiteState* FaultInjector::Roll(std::string_view site) {
  if (!enabled_) return nullptr;
  auto it = sites_.find(site);
  if (it == sites_.end()) return nullptr;
  SiteState& state = it->second;
  ++state.checks;
  if ((state.rule.max_fires >= 0 && state.fires >= state.rule.max_fires) ||
      state.checks <= state.rule.skip_checks) {
    state.rng.NextDouble();  // keep the stream advancing check-for-check
    return nullptr;
  }
  if (!state.rng.NextBool(state.rule.probability)) return nullptr;
  ++state.fires;
  ++total_fires_;
  return &state;
}

bool FaultInjector::Fires(std::string_view site) {
  return Roll(site) != nullptr;
}

Status FaultInjector::MaybeFail(std::string_view site) {
  SiteState* state = Roll(site);
  if (state == nullptr) return Status::OK();
  return Status(state->rule.code, "injected fault at " + std::string(site) +
                                      " (fire #" +
                                      std::to_string(state->fires) + ")");
}

double FaultInjector::Multiplier(std::string_view site) {
  SiteState* state = Roll(site);
  return state == nullptr ? 1.0 : state->rule.multiplier;
}

int64_t FaultInjector::fire_count(std::string_view site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

int64_t FaultInjector::check_count(std::string_view site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.checks;
}

namespace {
constexpr uint32_t kFaultSectionTag = 0x544C4641;  // "AFLT"
}  // namespace

void FaultInjector::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kFaultSectionTag);
  writer->WriteBool(enabled_);
  writer->WriteI64(total_fires_);
  writer->WriteU64(sites_.size());
  for (const auto& [name, state] : sites_) {  // std::map: sorted, stable
    writer->WriteString(name);
    for (uint64_t word : state.rng.state()) writer->WriteU64(word);
    writer->WriteI64(state.checks);
    writer->WriteI64(state.fires);
  }
}

Status FaultInjector::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kFaultSectionTag));
  bool was_enabled = false;
  COLT_RETURN_IF_ERROR(reader->ReadBool(&was_enabled));
  int64_t total_fires = 0;
  COLT_RETURN_IF_ERROR(reader->ReadI64(&total_fires));
  uint64_t count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    COLT_RETURN_IF_ERROR(reader->ReadString(&name));
    std::array<uint64_t, 4> rng_state{};
    for (uint64_t& word : rng_state) COLT_RETURN_IF_ERROR(reader->ReadU64(&word));
    int64_t checks = 0, fires = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&checks));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&fires));
    auto it = sites_.find(name);
    if (it == sites_.end()) continue;  // site not configured this run
    it->second.rng.set_state(rng_state);
    it->second.checks = checks;
    it->second.fires = fires;
  }
  total_fires_ = total_fires;
  return Status::OK();
}

}  // namespace colt
