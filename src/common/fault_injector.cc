#include "common/fault_injector.h"

#include <utility>

namespace colt {

namespace {

/// FNV-1a over the site name; mixed with the config seed to key the
/// per-site streams.
uint64_t SiteHash(std::string_view site) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : site) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)) {
  enabled_ = config_.enabled && !config_.rules.empty();
  if (!enabled_) return;
  for (const auto& [site, rule] : config_.rules) {
    SiteState state;
    state.rule = rule;
    state.rng.Seed(config_.seed ^ SiteHash(site));
    sites_.emplace(site, std::move(state));
  }
}

FaultInjector::SiteState* FaultInjector::Roll(std::string_view site) {
  if (!enabled_) return nullptr;
  auto it = sites_.find(site);
  if (it == sites_.end()) return nullptr;
  SiteState& state = it->second;
  ++state.checks;
  if (state.rule.max_fires >= 0 && state.fires >= state.rule.max_fires) {
    state.rng.NextDouble();  // keep the stream advancing check-for-check
    return nullptr;
  }
  if (!state.rng.NextBool(state.rule.probability)) return nullptr;
  ++state.fires;
  ++total_fires_;
  return &state;
}

bool FaultInjector::Fires(std::string_view site) {
  return Roll(site) != nullptr;
}

Status FaultInjector::MaybeFail(std::string_view site) {
  SiteState* state = Roll(site);
  if (state == nullptr) return Status::OK();
  return Status(state->rule.code, "injected fault at " + std::string(site) +
                                      " (fire #" +
                                      std::to_string(state->fires) + ")");
}

double FaultInjector::Multiplier(std::string_view site) {
  SiteState* state = Roll(site);
  return state == nullptr ? 1.0 : state->rule.multiplier;
}

int64_t FaultInjector::fire_count(std::string_view site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

int64_t FaultInjector::check_count(std::string_view site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.checks;
}

}  // namespace colt
