#ifndef COLT_COMMON_METRICS_H_
#define COLT_COMMON_METRICS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace colt {

/// Whether the metrics layer is compiled in. Builds configured with
/// -DCOLT_DISABLE_METRICS=ON turn every instrument update into an empty
/// inline function so the instrumented call sites carry zero cost; the
/// registry/snapshot API stays link-compatible either way.
#ifdef COLT_DISABLE_METRICS
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

/// Monotonic wall-clock stopwatch, the single timing primitive shared by
/// the metrics layer, the tracer, and the benches (no more ad-hoc chrono
/// snippets at call sites). On x86-64 it reads the invariant TSC with a
/// one-time calibration against steady_clock — under half the cost of a
/// clock_gettime-backed read, which matters when instrumenting
/// microsecond-scale pipeline stages; elsewhere it is steady_clock.
class WallTimer {
 public:
  WallTimer() : start_(Now()) {}
  void Reset() { start_ = Now(); }
  /// Seconds elapsed since construction / last Reset().
  double Seconds() const { return Now() - start_; }
  /// Monotonic seconds since an arbitrary process-stable epoch.
  static double Now();

 private:
  double start_;
};

/// Monotonic counter. Updates are dropped while the owning registry is
/// disabled, so a disabled run observes nothing (and pays one predictable
/// branch per update).
class Counter {
 public:
  void Increment() { Add(1); }
  void Add([[maybe_unused]] int64_t n) {
#ifndef COLT_DISABLE_METRICS
    if (*enabled_) value_ += n;
#endif
  }
  int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  void Reset() { value_ = 0; }

  const bool* enabled_;
  int64_t value_ = 0;
};

/// Last-value gauge (e.g. budget utilization, current hot-set size).
class Gauge {
 public:
  void Set([[maybe_unused]] double v) {
#ifndef COLT_DISABLE_METRICS
    if (*enabled_) value_ = v;
#endif
  }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  void Reset() { value_ = 0.0; }

  const bool* enabled_;
  double value_ = 0.0;
};

/// Bucket layout of a histogram. Bucket i covers
/// (upper_bounds[i-1], upper_bounds[i]]; values above the last bound land
/// in a dedicated overflow bucket. Defaults suit wall-clock seconds from
/// ~100ns up to ~100s.
struct HistogramOptions {
  std::vector<double> upper_bounds;

  /// Exponential bounds: first_upper * growth^i, `buckets` of them.
  static HistogramOptions Exponential(double first_upper = 1e-7,
                                      double growth = 4.0, int buckets = 16);
  /// Equal-width bounds over (lo, hi].
  static HistogramOptions Linear(double lo, double hi, int buckets);
};

/// Percentile summary of a histogram at snapshot time.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> upper_bounds;
  std::vector<int64_t> bucket_counts;  // same length as upper_bounds
  int64_t overflow = 0;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Fixed-bucket histogram with exact count/sum/min/max and interpolated
/// percentiles. Single-writer, like the rest of the tuning stack.
class Histogram {
 public:
  void Record(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// The p-th percentile (0 < p <= 100) by linear interpolation inside the
  /// containing bucket; exact min/max clamp the ends. 0 when empty.
  double Percentile(double p) const;

  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  friend class ScopedTimer;
  Histogram(const bool* enabled, HistogramOptions options);
  void Reset();
  /// Folds `other` in bucket-wise; bucket layouts must match.
  void Merge(const Histogram& other);

  const bool* enabled_;
  std::vector<double> upper_bounds_;
  std::vector<int64_t> buckets_;
  int64_t overflow_ = 0;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// RAII wall-clock timer recording into a histogram on scope exit. When
/// the registry is disabled at construction the timer never reads the
/// clock, so instrumented scopes cost one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { Stop(); }

  /// Records now instead of at scope exit; further Stop()s are no-ops.
  /// Returns the elapsed seconds (0 when inactive).
  double Stop();

 private:
  Histogram* hist_ = nullptr;  // null = inactive
  double start_ = 0.0;
};

/// Full point-in-time view of a registry, exportable as JSONL (one JSON
/// object per line) and re-parsable for offline diffing.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  std::string ToJsonl() const;
  static Result<MetricsSnapshot> FromJsonl(std::string_view text);

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Human-readable rendering of one snapshot / of the delta between two
/// (counters: after - before; gauges: before -> after; histograms: count
/// and sum deltas plus the after-side percentiles).
std::string FormatSnapshot(const MetricsSnapshot& snapshot);
std::string FormatSnapshotDiff(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

/// Prometheus text exposition of a snapshot: dotted names map to
/// underscores, counters gain the `_total` suffix, histograms export
/// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Name-keyed registry of counters, gauges and histograms. Disabled by
/// default: instruments can be registered and cached at any time, but
/// record nothing until set_enabled(true), so the fault-injector pattern
/// holds — an untouched run is observationally identical to one without
/// the metrics layer. Instrument pointers are stable for the registry's
/// lifetime; call sites fetch them once and update through the pointer.
///
/// Thread-compatibility: a registry is single-writer, NOT synchronized.
/// Parallel code follows the per-worker-buffer rule (DESIGN.md §10): each
/// pool worker records into a private registry it exclusively owns, and
/// the owning thread folds those buffers into the main registry with
/// MergeFrom() at epoch boundaries, while the workers are quiescent.
/// Default() is the main thread's registry and must not be touched from
/// worker tasks.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the tuning stack instruments against.
  /// Owner-only: worker code instruments its per-worker registry, merged
  /// at the epoch boundary in slot order (DESIGN.md §10).
  COLT_OWNER_ONLY static MetricsRegistry& Default();

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Returns the named instrument, creating it on first use. A histogram's
  /// options are fixed by its first registration.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name, HistogramOptions options =
                                                     HistogramOptions());

  /// Zeroes every instrument; registrations (and pointers) survive.
  void Reset();

  /// Folds another registry's recorded values into this one: counters add,
  /// histograms merge bucket-wise (count/sum/min/max/overflow; layouts of
  /// same-named histograms must match). Gauges are deliberately skipped —
  /// a last-value instrument has no meaningful cross-buffer merge. `other`
  /// is left untouched; callers Reset() it to start the next epoch's
  /// buffer. The merge records regardless of either registry's enabled
  /// flag: it moves bookkeeping, it is not an instrumentation site.
  COLT_OWNER_ONLY void MergeFrom(const MetricsRegistry& other);

  MetricsSnapshot Snapshot() const;

 private:
  bool enabled_ = false;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace colt

#endif  // COLT_COMMON_METRICS_H_
