#ifndef COLT_COMMON_THREAD_POOL_H_
#define COLT_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace colt {

/// Fixed-size worker pool with deterministic, ordered result-merging.
///
/// Parallelism in this codebase must never change observable results: the
/// Fig. 3-6 experiments are compared bit-for-bit between serial and
/// parallel runs (see DESIGN.md §10). The pool supports that contract by
/// construction rather than by locking discipline:
///
///  * Map() joins futures in submission order, so the merged result vector
///    (and the first rethrown exception) is independent of which worker ran
///    which task and in what order tasks finished.
///  * Tasks that need randomness draw from a private stream split from the
///    parent seed by *task index* (TaskRng), never from a shared Rng, so
///    the draw sequence does not depend on scheduling.
///  * Zero workers is the degenerate inline mode: Submit() runs the task on
///    the calling thread. A pool-using call site therefore needs no serial
///    fallback path of its own — the two modes share one code path.
///
/// Status propagation: tasks in this codebase return Status/Result<T> as
/// values; the future carries them like any other result. Exceptions thrown
/// by a task are captured in its future and rethrown on get().
///
/// This is the only place in the tree allowed to create threads (enforced
/// by the colt_lint `naked-thread` rule); everything else funnels through
/// the pool so shutdown, joining, and determinism stay in one place.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads; values < 1 mean inline mode (no
  /// threads, Submit runs on the caller). With `pin_workers` set, worker i
  /// is pinned to CPU (i mod hardware cores) — the serving layer uses this
  /// to stabilize tail latency; tuning pools leave it off. Pinning is
  /// best-effort and a no-op on non-Linux platforms.
  explicit ThreadPool(int num_workers, bool pin_workers = false);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: destruction waits only for tasks already dequeued and
  /// discards none — all submitted tasks run before the workers exit.
  ~ThreadPool();

  /// Worker threads owned by the pool (0 in inline mode).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` and returns its future. Inline mode runs `fn` before
  /// returning (the future is already ready). Owner-only: tasks are
  /// submitted by the tuning thread; workers never spawn sub-tasks (the
  /// deterministic join order of DESIGN.md §10 assumes one submitter).
  template <typename Fn>
  COLT_OWNER_ONLY auto Submit(Fn fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();
    } else {
      Enqueue([task] { (*task)(); });
    }
    return future;
  }

  /// Runs fn(0), ..., fn(task_count - 1) on the pool and returns their
  /// results merged in task-index order (NOT completion order). The first
  /// exception, by task index, is rethrown after all tasks finished
  /// executing, so a throwing Map never leaves tasks running.
  template <typename Fn>
  COLT_OWNER_ONLY auto Map(size_t task_count, Fn fn) -> std::vector<decltype(fn(size_t{0}))> {
    using R = decltype(fn(size_t{0}));
    std::vector<std::future<R>> futures;
    futures.reserve(task_count);
    for (size_t i = 0; i < task_count; ++i) {
      futures.push_back(Submit([fn, i] { return fn(i); }));
    }
    for (auto& future : futures) future.wait();
    std::vector<R> out;
    out.reserve(task_count);
    for (auto& future : futures) out.push_back(future.get());
    return out;
  }

  /// Deterministic per-task RNG stream: a function of (parent_seed,
  /// task_index) only, so a task draws the same sequence no matter which
  /// worker runs it — or whether a pool is involved at all. The one
  /// sanctioned way for pool-executed code to obtain randomness (colt_lint
  /// thread-role analyzer, DESIGN.md §14).
  COLT_THREAD_NEUTRAL static Rng TaskRng(uint64_t parent_seed,
                                         uint64_t task_index);

  /// std::thread::hardware_concurrency() with a floor of 1. Call sites
  /// outside this header use the wrapper so the `naked-thread` lint rule
  /// can ban the std::thread token everywhere else.
  static int HardwareConcurrency();

 private:
  void Enqueue(std::function<void()> task) COLT_EXCLUDES(mu_);
  void WorkerLoop() COLT_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ COLT_GUARDED_BY(mu_);
  bool shutdown_ COLT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace colt

#endif  // COLT_COMMON_THREAD_POOL_H_
