#include "common/logging.h"

#include <atomic>

namespace colt {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

}  // namespace colt
