#include "common/logging.h"

#include <atomic>

#include "common/mutex.h"

namespace colt {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

void EmitLogLine(LogLevel /*level*/, const std::string& line) {
  // Leaky-singleton mutex: LogMessage runs from destructors during
  // shutdown, after function-local statics with destructors would have
  // been torn down. (colt::Mutex is trivially destructible in practice,
  // but the leak keeps the sink valid under any libstdc++.)
  static Mutex* mu = new Mutex;
  MutexLock lock(mu);
  // One fputs of the complete line instead of fprintf("%s\n"): stderr is
  // unbuffered, so splitting the newline into a second write is exactly
  // the mid-line interleaving this sink exists to prevent.
  std::string buffered = line;
  buffered.push_back('\n');
  std::fputs(buffered.c_str(), stderr);
}

}  // namespace internal_logging

}  // namespace colt
