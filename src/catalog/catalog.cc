#include "catalog/catalog.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace colt {

namespace {

uint64_t HashColumnList(const std::vector<ColumnRef>& columns) {
  uint64_t h = 1469598103934665603ULL;
  for (const ColumnRef& ref : columns) {
    const uint64_t packed =
        (static_cast<uint64_t>(static_cast<uint32_t>(ref.table)) << 32) |
        static_cast<uint32_t>(ref.column);
    h ^= packed + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

bool IndexConfiguration::Contains(IndexId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool IndexConfiguration::Add(IndexId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return false;
  ids_.insert(it, id);
  return true;
}

bool IndexConfiguration::Remove(IndexId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return false;
  ids_.erase(it);
  return true;
}

uint64_t IndexConfiguration::Signature() const {
  // FNV-1a over the sorted id sequence.
  uint64_t h = 1469598103934665603ULL;
  for (IndexId id : ids_) {
    uint64_t v = static_cast<uint64_t>(id);
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

IndexConfiguration IndexConfiguration::With(IndexId id) const {
  IndexConfiguration copy = *this;
  copy.Add(id);
  return copy;
}

IndexConfiguration IndexConfiguration::Without(IndexId id) const {
  IndexConfiguration copy = *this;
  copy.Remove(id);
  return copy;
}

TableId Catalog::AddTable(TableSchema schema) {
  tables_.push_back(std::move(schema));
  return static_cast<TableId>(tables_.size() - 1);
}

TableId Catalog::FindTable(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name() == name) return static_cast<TableId>(i);
  }
  return kInvalidTableId;
}

IndexDescriptor Catalog::EstimateCompositeIndex(
    const std::vector<ColumnRef>& columns) const {
  const TableSchema& t = tables_[columns[0].table];
  IndexDescriptor desc;
  desc.column = columns[0];
  desc.columns = columns;
  desc.name = t.name() + ".";
  int32_t key_bytes = 0;
  for (size_t i = 0; i < columns.size(); ++i) {
    const ColumnDef& col = t.column(columns[i].column);
    if (i > 0) desc.name += "_";
    desc.name += col.name;
    key_bytes += col.width_bytes;
  }
  desc.name += "_idx";
  desc.entry_count = t.row_count();
  // Leaf entry: key + heap TID (6 bytes) + item overhead (~10 bytes),
  // B+-tree pages ~70% full on average.
  const double entry_bytes = static_cast<double>(key_bytes) + 16.0;
  const double usable = kPageSizeBytes * 0.70;
  const double entries_per_leaf = std::max(2.0, usable / entry_bytes);
  desc.leaf_pages = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(static_cast<double>(desc.entry_count) /
                       entries_per_leaf)));
  // Internal fanout: key + child pointer (8 bytes).
  const double fanout =
      std::max(2.0, usable / (static_cast<double>(key_bytes) + 12.0));
  int32_t height = 1;
  double level_pages = static_cast<double>(desc.leaf_pages);
  int64_t internal_pages = 0;
  while (level_pages > 1.0) {
    level_pages = std::ceil(level_pages / fanout);
    internal_pages += static_cast<int64_t>(level_pages);
    ++height;
  }
  desc.height = height;
  desc.size_bytes = (desc.leaf_pages + internal_pages) * kPageSizeBytes;
  return desc;
}

IndexDescriptor Catalog::EstimateIndex(ColumnRef column) const {
  return EstimateCompositeIndex({column});
}

Result<IndexDescriptor> Catalog::IndexOn(ColumnRef column) {
  if (!column.valid() || column.table >= table_count() ||
      column.column >= tables_[column.table].column_count()) {
    return Status::InvalidArgument("invalid column reference");
  }
  if (!tables_[column.table].column(column.column).indexable) {
    return Status::FailedPrecondition(
        "column " + tables_[column.table].column(column.column).name +
        " is not indexable");
  }
  const uint64_t key = HashColumnList({column});
  auto it = index_by_column_.find(key);
  if (it != index_by_column_.end()) return index_by_id_.at(it->second);
  IndexDescriptor desc = EstimateIndex(column);
  desc.id = static_cast<IndexId>(index_by_id_.size());
  index_by_column_.emplace(key, desc.id);
  index_by_id_.emplace(desc.id, desc);
  return desc;
}

Result<IndexDescriptor> Catalog::CompositeIndexOn(
    std::vector<ColumnRef> columns) {
  if (columns.size() < 2) {
    return Status::InvalidArgument(
        "composite index needs at least 2 columns");
  }
  const TableId table = columns[0].table;
  for (size_t i = 0; i < columns.size(); ++i) {
    const ColumnRef& col = columns[i];
    if (!col.valid() || col.table >= table_count() ||
        col.column >= tables_[col.table].column_count()) {
      return Status::InvalidArgument("invalid column reference");
    }
    if (col.table != table) {
      return Status::InvalidArgument(
          "composite index columns must share a table");
    }
    if (!tables_[col.table].column(col.column).indexable) {
      return Status::FailedPrecondition("column is not indexable");
    }
    for (size_t j = 0; j < i; ++j) {
      if (columns[j] == col) {
        return Status::InvalidArgument("duplicate column in composite index");
      }
    }
  }
  const uint64_t key = HashColumnList(columns);
  auto it = index_by_column_.find(key);
  if (it != index_by_column_.end()) return index_by_id_.at(it->second);
  IndexDescriptor desc = EstimateCompositeIndex(columns);
  desc.id = static_cast<IndexId>(index_by_id_.size());
  index_by_column_.emplace(key, desc.id);
  index_by_id_.emplace(desc.id, desc);
  return desc;
}

const IndexDescriptor& Catalog::index(IndexId id) const {
  auto it = index_by_id_.find(id);
  COLT_CHECK(it != index_by_id_.end()) << "unknown index id " << id;
  return it->second;
}

std::vector<IndexDescriptor> Catalog::AllIndexes() const {
  std::vector<IndexDescriptor> out;
  out.reserve(index_by_id_.size());
  for (const auto& [id, desc] : index_by_id_) out.push_back(desc);
  std::sort(out.begin(), out.end(),
            [](const IndexDescriptor& a, const IndexDescriptor& b) {
              return a.id < b.id;
            });
  return out;
}

int64_t Catalog::total_rows() const {
  int64_t total = 0;
  for (const auto& t : tables_) total += t.row_count();
  return total;
}

int64_t Catalog::total_heap_bytes() const {
  int64_t total = 0;
  for (const auto& t : tables_) total += t.heap_bytes();
  return total;
}

int32_t Catalog::total_indexable_columns() const {
  int32_t total = 0;
  for (const auto& t : tables_) total += t.indexable_column_count();
  return total;
}

namespace {
constexpr uint32_t kCatalogSectionTag = 0x4C544143;  // "CATL"
}  // namespace

uint64_t Catalog::Fingerprint() const {
  BinaryWriter w;
  w.WriteU64(tables_.size());
  for (const TableSchema& t : tables_) {
    w.WriteString(t.name());
    w.WriteI64(t.row_count());
    w.WriteU64(t.columns().size());
    for (const ColumnDef& c : t.columns()) {
      w.WriteString(c.name);
      w.WriteU32(static_cast<uint32_t>(c.type));
      w.WriteU32(static_cast<uint32_t>(c.width_bytes));
      w.WriteI64(c.ndv);
      w.WriteBool(c.indexable);
      w.WriteDouble(c.skew);
    }
    for (int32_t i = 0; i < t.column_count(); ++i) {
      w.WriteU64(t.column_stats(i).Fingerprint());
    }
  }
  return Fnv1a64(w.buffer());
}

void Catalog::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kCatalogSectionTag);
  writer->WriteU64(Fingerprint());
  const std::vector<IndexDescriptor> indexes = AllIndexes();
  writer->WriteU64(indexes.size());
  for (const IndexDescriptor& desc : indexes) {
    writer->WriteI64(desc.id);
    writer->WriteU64(desc.columns.size());
    for (const ColumnRef& ref : desc.columns) {
      writer->WriteI64(ref.table);
      writer->WriteI64(ref.column);
    }
  }
  writer->WriteU64(version_);
}

Status Catalog::LoadState(BinaryReader* reader, uint64_t* version) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kCatalogSectionTag));
  uint64_t fingerprint = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&fingerprint));
  if (fingerprint != Fingerprint()) {
    return Status::FailedPrecondition(
        "catalog fingerprint mismatch: the checkpoint was taken against a "
        "different schema or statistics");
  }
  uint64_t index_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&index_count));
  for (uint64_t i = 0; i < index_count; ++i) {
    int64_t id = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&id));
    uint64_t column_count = 0;
    COLT_RETURN_IF_ERROR(reader->ReadU64(&column_count));
    if (column_count == 0 || column_count > 64) {
      return Status::InvalidArgument("corrupt descriptor column count " +
                                     std::to_string(column_count));
    }
    std::vector<ColumnRef> columns;
    columns.reserve(column_count);
    for (uint64_t j = 0; j < column_count; ++j) {
      int64_t table = 0, column = 0;
      COLT_RETURN_IF_ERROR(reader->ReadI64(&table));
      COLT_RETURN_IF_ERROR(reader->ReadI64(&column));
      columns.push_back(ColumnRef{static_cast<TableId>(table),
                                  static_cast<ColumnId>(column)});
    }
    Result<IndexDescriptor> desc =
        columns.size() == 1 ? IndexOn(columns[0])
                            : CompositeIndexOn(std::move(columns));
    COLT_RETURN_IF_ERROR(desc.status());
    if (desc->id != static_cast<IndexId>(id)) {
      return Status::FailedPrecondition(
          "descriptor id drift during recovery: persisted id " +
          std::to_string(id) + " recreated as " + std::to_string(desc->id));
    }
  }
  COLT_RETURN_IF_ERROR(reader->ReadU64(version));
  return Status::OK();
}

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kDate:
      return "date";
    case ColumnType::kDecimal:
      return "decimal";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

}  // namespace colt
