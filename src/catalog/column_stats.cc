#include "catalog/column_stats.h"

#include <cmath>
#include <unordered_set>

#include "common/persist/serializer.h"

namespace colt {

ColumnStats ColumnStats::FromValues(const std::vector<int64_t>& values,
                                    int buckets, HistogramType type) {
  ColumnStats stats;
  stats.type_ = type;
  stats.row_count_ = static_cast<int64_t>(values.size());
  if (values.empty()) return stats;
  stats.min_ = *std::min_element(values.begin(), values.end());
  stats.max_ = *std::max_element(values.begin(), values.end());
  std::unordered_set<int64_t> distinct(values.begin(), values.end());
  stats.ndv_ = static_cast<int64_t>(distinct.size());
  const int nb = std::max(1, buckets);
  if (type == HistogramType::kEquiWidth) {
    const double span = static_cast<double>(stats.max_ - stats.min_) + 1.0;
    stats.bucket_width_ = span / nb;
    stats.bucket_counts_.assign(nb, 0);
    for (int64_t v : values) {
      int b = static_cast<int>(static_cast<double>(v - stats.min_) /
                               stats.bucket_width_);
      if (b >= nb) b = nb - 1;
      ++stats.bucket_counts_[b];
    }
    return stats;
  }
  // Equi-depth: boundaries at quantiles of the sorted values. Runs of a
  // single value never straddle a boundary (the boundary moves to the end
  // of the run), so buckets are approximately, not exactly, equal.
  std::vector<int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const int64_t n = stats.row_count_;
  const int64_t target = std::max<int64_t>(1, (n + nb - 1) / nb);
  int64_t start = 0;
  while (start < n) {
    int64_t end = std::min<int64_t>(n, start + target);
    // Extend past a run of equal values.
    while (end < n && sorted[end] == sorted[end - 1]) ++end;
    stats.bucket_counts_.push_back(end - start);
    stats.bucket_upper_.push_back(sorted[end - 1]);
    start = end;
  }
  return stats;
}

ColumnStats ColumnStats::Uniform(int64_t ndv, int64_t row_count, int buckets) {
  ColumnStats stats;
  stats.row_count_ = row_count;
  stats.ndv_ = std::min(ndv, row_count);
  if (row_count == 0) return stats;
  stats.min_ = 0;
  stats.max_ = ndv - 1;
  const int nb = std::max(1, buckets);
  stats.bucket_width_ = static_cast<double>(ndv) / nb;
  stats.bucket_counts_.assign(nb, 0);
  // Distribute rows evenly; remainder goes to the first buckets.
  const int64_t base = row_count / nb;
  const int64_t rem = row_count % nb;
  for (int i = 0; i < nb; ++i) {
    stats.bucket_counts_[i] = base + (i < rem ? 1 : 0);
  }
  return stats;
}

ColumnStats ColumnStats::Zipf(int64_t ndv, int64_t row_count, double skew,
                              int buckets) {
  ColumnStats stats;
  stats.type_ = HistogramType::kEquiDepth;
  stats.row_count_ = row_count;
  stats.ndv_ = std::min(ndv, row_count);
  if (row_count == 0 || ndv <= 0) return stats;
  stats.min_ = 0;
  stats.max_ = ndv - 1;
  const int nb = std::max(1, buckets);
  // Equi-depth boundaries from the analytic Zipf pmf p(v) ∝ (v+1)^-skew:
  // walk values accumulating mass, closing a bucket whenever ~1/nb of the
  // total has accumulated. The head is walked exactly; a very long tail
  // (beyond kExactHead values) carries little mass and is folded into the
  // final bucket.
  const int64_t kExactHead = std::min<int64_t>(ndv, 1'000'000);
  double norm = 0.0;
  for (int64_t v = 0; v < kExactHead; ++v) {
    norm += std::pow(static_cast<double>(v + 1), -skew);
  }
  double tail_mass = 0.0;
  if (kExactHead < ndv) {
    if (std::fabs(skew - 1.0) < 1e-9) {
      tail_mass = std::log(static_cast<double>(ndv) /
                           static_cast<double>(kExactHead));
    } else {
      tail_mass = (std::pow(static_cast<double>(ndv), 1.0 - skew) -
                   std::pow(static_cast<double>(kExactHead), 1.0 - skew)) /
                  (1.0 - skew);
    }
    norm += tail_mass;
  }
  const double per_bucket = norm / nb;
  double acc = 0.0;
  int64_t rows_assigned = 0;
  double mass_assigned = 0.0;
  for (int64_t v = 0; v < kExactHead; ++v) {
    acc += std::pow(static_cast<double>(v + 1), -skew);
    const bool last_value = (v == ndv - 1);
    if (acc >= per_bucket || last_value) {
      const int64_t count = static_cast<int64_t>(std::llround(
          static_cast<double>(row_count) * acc / norm));
      stats.bucket_counts_.push_back(count);
      stats.bucket_upper_.push_back(v);
      rows_assigned += count;
      mass_assigned += acc;
      acc = 0.0;
    }
  }
  if (kExactHead < ndv) {
    stats.bucket_counts_.push_back(row_count - rows_assigned);
    stats.bucket_upper_.push_back(ndv - 1);
  } else if (!stats.bucket_counts_.empty()) {
    // Fix rounding drift in the last bucket.
    stats.bucket_counts_.back() += row_count - rows_assigned;
  }
  return stats;
}

double ColumnStats::EqualitySelectivity(int64_t v) const {
  if (row_count_ == 0 || ndv_ == 0) return 0.0;
  if (v < min_ || v > max_) return 0.0;
  return 1.0 / static_cast<double>(ndv_);
}

double ColumnStats::RangeSelectivity(int64_t lo, int64_t hi) const {
  if (row_count_ == 0 || lo > hi) return 0.0;
  const int64_t clo = std::max(lo, min_);
  const int64_t chi = std::min(hi, max_);
  if (clo > chi) return 0.0;
  if (type_ == HistogramType::kEquiDepth && !bucket_upper_.empty()) {
    // Sum buckets fully inside [clo, chi]; interpolate linearly (in value
    // space) within the partially-overlapped end buckets.
    double selected = 0.0;
    int64_t bucket_lo = min_;  // lowest value coverable by bucket b
    for (size_t b = 0; b < bucket_upper_.size(); ++b) {
      const int64_t bucket_hi = bucket_upper_[b];
      const int64_t overlap_lo = std::max<int64_t>(bucket_lo, clo);
      const int64_t overlap_hi = std::min<int64_t>(bucket_hi, chi);
      if (overlap_lo <= overlap_hi) {
        const double span =
            static_cast<double>(bucket_hi - bucket_lo) + 1.0;
        const double overlap =
            static_cast<double>(overlap_hi - overlap_lo) + 1.0;
        selected += static_cast<double>(bucket_counts_[b]) * (overlap / span);
      }
      bucket_lo = bucket_hi + 1;
      if (bucket_lo > chi) break;
    }
    return std::min(1.0, selected / static_cast<double>(row_count_));
  }
  if (bucket_counts_.empty()) {
    // Fall back to the uniform-span assumption.
    const double span = static_cast<double>(max_ - min_) + 1.0;
    return (static_cast<double>(chi - clo) + 1.0) / span;
  }
  // Sum full buckets plus linear interpolation in the partial end buckets.
  double selected = 0.0;
  const int nb = static_cast<int>(bucket_counts_.size());
  for (int b = 0; b < nb; ++b) {
    const double b_lo = static_cast<double>(min_) + b * bucket_width_;
    const double b_hi = b_lo + bucket_width_;
    const double q_lo = static_cast<double>(clo);
    const double q_hi = static_cast<double>(chi) + 1.0;  // half-open
    const double overlap =
        std::max(0.0, std::min(b_hi, q_hi) - std::max(b_lo, q_lo));
    if (overlap > 0.0) {
      selected +=
          static_cast<double>(bucket_counts_[b]) * (overlap / bucket_width_);
    }
  }
  return std::min(1.0, selected / static_cast<double>(row_count_));
}

uint64_t ColumnStats::Fingerprint() const {
  BinaryWriter w;
  w.WriteI64(row_count_);
  w.WriteI64(ndv_);
  w.WriteI64(min_);
  w.WriteI64(max_);
  w.WriteU32(static_cast<uint32_t>(type_));
  w.WriteU64(bucket_counts_.size());
  for (int64_t c : bucket_counts_) w.WriteI64(c);
  w.WriteDouble(bucket_width_);
  w.WriteU64(bucket_upper_.size());
  for (int64_t u : bucket_upper_) w.WriteI64(u);
  return Fnv1a64(w.buffer());
}

}  // namespace colt
