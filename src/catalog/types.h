#ifndef COLT_CATALOG_TYPES_H_
#define COLT_CATALOG_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace colt {

/// Identifies a table within a Catalog.
using TableId = int32_t;
/// Identifies a column by position within its table's schema.
using ColumnId = int32_t;
/// Identifies a (materialized or hypothetical) index.
using IndexId = int64_t;

inline constexpr TableId kInvalidTableId = -1;
inline constexpr ColumnId kInvalidColumnId = -1;
inline constexpr IndexId kInvalidIndexId = -1;

/// Logical column type. The storage engine represents every value as an
/// int64 payload (strings/dates/decimals are dictionary-coded surrogates);
/// the logical type and declared byte width drive size accounting only,
/// exactly what index selection needs.
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kDate = 2,
  kDecimal = 3,
  kString = 4,
};

const char* ColumnTypeName(ColumnType type);

/// A fully-qualified column reference.
struct ColumnRef {
  TableId table = kInvalidTableId;
  ColumnId column = kInvalidColumnId;

  bool valid() const { return table >= 0 && column >= 0; }
  friend bool operator==(const ColumnRef&, const ColumnRef&) = default;
  friend auto operator<=>(const ColumnRef&, const ColumnRef&) = default;
};

struct ColumnRefHash {
  size_t operator()(const ColumnRef& ref) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(ref.table) << 32) ^
                                 static_cast<uint32_t>(ref.column));
  }
};

/// Database page size in bytes (PostgreSQL default).
inline constexpr int64_t kPageSizeBytes = 8192;
/// Per-tuple storage overhead (header + item pointer), PostgreSQL-like.
inline constexpr int64_t kTupleHeaderBytes = 28;
/// Fraction of a page usable for tuples.
inline constexpr double kPageFillFactor = 0.9;

}  // namespace colt

#endif  // COLT_CATALOG_TYPES_H_
