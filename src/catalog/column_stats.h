#ifndef COLT_CATALOG_COLUMN_STATS_H_
#define COLT_CATALOG_COLUMN_STATS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "catalog/types.h"

namespace colt {

/// Histogram flavors for selectivity estimation. Equi-width splits the
/// value domain evenly (cheap, fine for uniform data); equi-depth places
/// bucket boundaries at quantiles so each bucket holds ~the same number of
/// rows (robust to skew).
enum class HistogramType { kEquiWidth, kEquiDepth };

/// Per-column statistics used by the optimizer for selectivity estimation.
/// Populated by the data generator (exact) or by scanning stored data.
class ColumnStats {
 public:
  ColumnStats() = default;

  /// Builds stats with a `buckets`-bucket histogram from raw values.
  static ColumnStats FromValues(const std::vector<int64_t>& values,
                                int buckets = 32,
                                HistogramType type = HistogramType::kEquiWidth);

  /// Builds stats analytically for a column whose values are uniform over
  /// [0, ndv) with `row_count` rows (the generator's model).
  static ColumnStats Uniform(int64_t ndv, int64_t row_count, int buckets = 32);

  /// Builds stats analytically for a Zipf(skew)-distributed column over
  /// [0, ndv): expected per-value frequencies fill an equi-width histogram.
  static ColumnStats Zipf(int64_t ndv, int64_t row_count, double skew,
                          int buckets = 64);

  int64_t row_count() const { return row_count_; }
  int64_t ndv() const { return ndv_; }
  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }

  /// Estimated selectivity of `col = v`.
  double EqualitySelectivity(int64_t v) const;

  /// Estimated selectivity of `lo <= col <= hi` (inclusive bounds; pass
  /// INT64_MIN / INT64_MAX for open ends).
  double RangeSelectivity(int64_t lo, int64_t hi) const;

  bool empty() const { return row_count_ == 0; }
  HistogramType histogram_type() const { return type_; }
  int bucket_count() const { return static_cast<int>(bucket_counts_.size()); }

  /// Content hash over every field the optimizer reads (counts, bounds,
  /// histogram shape and contents). Checkpoint recovery compares the
  /// persisted fingerprint against the deterministically rebuilt catalog
  /// to detect a changed environment before trusting restored state.
  uint64_t Fingerprint() const;

 private:
  int64_t row_count_ = 0;
  int64_t ndv_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  HistogramType type_ = HistogramType::kEquiWidth;
  /// Rows per bucket. Equi-width: bucket i covers
  /// [min_ + i*bucket_width_, min_ + (i+1)*bucket_width_). Equi-depth:
  /// bucket i covers (bucket_upper_[i-1], bucket_upper_[i]] (value space),
  /// with bucket_upper_.back() == max_.
  std::vector<int64_t> bucket_counts_;
  double bucket_width_ = 1.0;
  /// Inclusive upper value bound per bucket (equi-depth only).
  std::vector<int64_t> bucket_upper_;
};

}  // namespace colt

#endif  // COLT_CATALOG_COLUMN_STATS_H_
