#ifndef COLT_CATALOG_CATALOG_H_
#define COLT_CATALOG_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/persist/serializer.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace colt {

/// Static description of a (potential or materialized) B+-tree index. The
/// descriptor carries the size/shape estimates used by the cost model and
/// by the KNAPSACK storage constraint; whether the index is actually
/// materialized is tracked separately (IndexConfiguration).
///
/// The paper studies single-column indexes; multi-column indexes (its
/// stated future work) are supported as an extension: `columns` holds the
/// key columns in order and `column` always aliases the leading one.
struct IndexDescriptor {
  IndexId id = kInvalidIndexId;
  /// Leading key column (== columns[0]).
  ColumnRef column;
  /// All key columns, in index order; size 1 for single-column indexes.
  std::vector<ColumnRef> columns;
  std::string name;
  /// Estimated total index size in bytes (leaf + internal pages).
  int64_t size_bytes = 0;
  /// Estimated number of leaf pages.
  int64_t leaf_pages = 0;
  /// Tree height: number of internal levels above the leaves (>= 1).
  int32_t height = 1;
  /// Number of entries (table row count at estimation time).
  int64_t entry_count = 0;

  bool is_composite() const { return columns.size() > 1; }
};

/// A set of single-column indexes, identified by IndexId. Kept sorted for a
/// stable signature; small (the paper's budgets fit 3-6 indexes), so linear
/// operations are fine.
class IndexConfiguration {
 public:
  IndexConfiguration() = default;

  bool Contains(IndexId id) const;
  /// Returns true if newly inserted.
  bool Add(IndexId id);
  /// Returns true if present and removed.
  bool Remove(IndexId id);
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  const std::vector<IndexId>& ids() const { return ids_; }

  /// Order-independent 64-bit signature of the set.
  uint64_t Signature() const;

  /// Set with `id` added (no-op if present).
  IndexConfiguration With(IndexId id) const;
  /// Set with `id` removed (no-op if absent).
  IndexConfiguration Without(IndexId id) const;

  friend bool operator==(const IndexConfiguration&,
                         const IndexConfiguration&) = default;

 private:
  std::vector<IndexId> ids_;  // sorted ascending
};

/// The system catalog: tables plus the universe of definable single-column
/// indexes. Index descriptors are created lazily (one per indexable column)
/// with deterministic ids, so every component — COLT, the OFFLINE baseline,
/// the optimizer — refers to the same IndexId for the same column.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a table; returns its id.
  TableId AddTable(TableSchema schema);

  int32_t table_count() const { return static_cast<int32_t>(tables_.size()); }
  const TableSchema& table(TableId id) const { return tables_[id]; }
  TableSchema& mutable_table(TableId id) { return tables_[id]; }

  /// Id of the table named `name`, or kInvalidTableId.
  TableId FindTable(const std::string& name) const;

  /// Returns the descriptor for the index on `column`, creating it on first
  /// use. Fails if the column is not indexable or the reference is invalid.
  Result<IndexDescriptor> IndexOn(ColumnRef column);

  /// Multi-column extension: descriptor for the composite index on
  /// `columns` (2+ distinct indexable columns of one table, significant
  /// order). Deterministic id per column list; created on first use.
  Result<IndexDescriptor> CompositeIndexOn(std::vector<ColumnRef> columns);

  /// Descriptor lookup by id; requires a previously created id.
  const IndexDescriptor& index(IndexId id) const;

  /// True if an index descriptor with this id exists.
  bool HasIndex(IndexId id) const { return index_by_id_.count(id) > 0; }

  /// All descriptors created so far.
  std::vector<IndexDescriptor> AllIndexes() const;

  /// Total rows across all tables.
  int64_t total_rows() const;
  /// Total heap bytes across all tables.
  int64_t total_heap_bytes() const;
  /// Total indexable attributes across all tables.
  int32_t total_indexable_columns() const;

  /// Estimates B+-tree shape/size for an index on `column`.
  /// Exposed for testing; IndexOn() uses it internally.
  IndexDescriptor EstimateIndex(ColumnRef column) const;

  /// Estimates B+-tree shape/size for a composite index.
  IndexDescriptor EstimateCompositeIndex(
      const std::vector<ColumnRef>& columns) const;

  /// Monotonic counter over everything the cost model reads: bumped on any
  /// real index install/drop and on statistics refresh (Database and
  /// Scheduler call BumpVersion at those points). The what-if plan cache
  /// tags every entry with the version it was computed under and treats a
  /// mismatch as a miss, so invalidation is precise (DESIGN.md §11).
  /// Creating descriptors lazily (IndexOn) does NOT bump: a new descriptor
  /// cannot appear in any already-cached configuration.
  COLT_WORKER_SAFE uint64_t version() const { return version_; }
  /// Records a catalog change that can affect optimizer cost estimates.
  /// Owner-only: version motion while workers Peek the what-if cache would
  /// turn their hit/miss decisions schedule-dependent.
  COLT_OWNER_ONLY void BumpVersion() { ++version_; }
  /// Overwrites the version counter with a persisted value. Recovery calls
  /// this LAST, after index rebuilds have bumped the live counter, so the
  /// restored run continues the exact counter sequence of the original.
  COLT_OWNER_ONLY void RestoreVersion(uint64_t version) {
    version_ = version;
  }

  /// Content hash of schemas + column statistics (not descriptors, not the
  /// version counter). Recovery uses it to verify that the restart rebuilt
  /// the same environment the checkpoint was taken in.
  uint64_t Fingerprint() const;

  /// Serializes the fingerprint, every index descriptor (column lists, in
  /// ascending id order — ids are assigned in creation order, so recovery
  /// must replay creations in that order), and the version counter.
  void SaveState(BinaryWriter* writer) const;

  /// Restores descriptors into this (already rebuilt) catalog: verifies
  /// the fingerprint matches, replays IndexOn/CompositeIndexOn in
  /// persisted id order, and confirms each id lands where it did in the
  /// original run. The persisted version counter is returned through
  /// `version` for the caller to apply (via RestoreVersion) once dependent
  /// components finish their own recovery. kFailedPrecondition on
  /// fingerprint mismatch; kInvalidArgument on malformed bytes.
  Status LoadState(BinaryReader* reader, uint64_t* version);

 private:
  std::vector<TableSchema> tables_;
  /// Key: FNV over the packed column list (single or composite).
  std::unordered_map<uint64_t, IndexId> index_by_column_;
  std::unordered_map<IndexId, IndexDescriptor> index_by_id_;
  uint64_t version_ = 1;
};

}  // namespace colt

#endif  // COLT_CATALOG_CATALOG_H_
