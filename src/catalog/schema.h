#ifndef COLT_CATALOG_SCHEMA_H_
#define COLT_CATALOG_SCHEMA_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/column_stats.h"
#include "catalog/types.h"

namespace colt {

/// Definition of a single column.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// Declared on-disk width in bytes (drives table/index size accounting).
  int32_t width_bytes = 8;
  /// Number of distinct values the generator draws from.
  int64_t ndv = 1;
  /// Whether an index may be built on this column. (All TPC-H attributes
  /// are indexable in our reproduction; kept for generality.)
  bool indexable = true;
  /// Zipf skew of the generated value distribution over [0, ndv); 0 means
  /// uniform. Analytic column statistics follow the same law.
  /// (Deliberately last: aggregate initializers elsewhere stop at
  /// `indexable`.)
  double skew = 0.0;
};

/// Schema plus physical statistics of one table.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns,
              int64_t row_count)
      : name_(std::move(name)),
        columns_(std::move(columns)),
        row_count_(row_count) {
    column_stats_.resize(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      column_stats_[i] =
          columns_[i].skew > 0.0
              ? ColumnStats::Zipf(columns_[i].ndv, row_count_,
                                  columns_[i].skew)
              : ColumnStats::Uniform(columns_[i].ndv, row_count_);
    }
  }

  const std::string& name() const { return name_; }
  int64_t row_count() const { return row_count_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  const ColumnDef& column(ColumnId id) const { return columns_[id]; }
  int32_t column_count() const { return static_cast<int32_t>(columns_.size()); }

  /// Index of the column with `name`, or kInvalidColumnId.
  ColumnId FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return static_cast<ColumnId>(i);
    }
    return kInvalidColumnId;
  }

  const ColumnStats& column_stats(ColumnId id) const {
    return column_stats_[id];
  }
  void set_column_stats(ColumnId id, ColumnStats stats) {
    column_stats_[id] = std::move(stats);
  }

  /// Bytes of one tuple including per-tuple overhead.
  int64_t tuple_bytes() const {
    int64_t w = kTupleHeaderBytes;
    for (const auto& c : columns_) w += c.width_bytes;
    return w;
  }

  /// Number of heap pages occupied by the table.
  int64_t heap_pages() const {
    const double bytes = static_cast<double>(row_count_) *
                         static_cast<double>(tuple_bytes()) / kPageFillFactor;
    return std::max<int64_t>(1, static_cast<int64_t>(
                                    std::ceil(bytes / kPageSizeBytes)));
  }

  /// Total heap bytes (pages * page size).
  int64_t heap_bytes() const { return heap_pages() * kPageSizeBytes; }

  /// Number of indexable columns.
  int32_t indexable_column_count() const {
    int32_t n = 0;
    for (const auto& c : columns_) n += c.indexable ? 1 : 0;
    return n;
  }

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  int64_t row_count_ = 0;
  std::vector<ColumnStats> column_stats_;
};

}  // namespace colt

#endif  // COLT_CATALOG_SCHEMA_H_
