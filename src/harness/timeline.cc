#include "harness/timeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace colt {

namespace {

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = std::min(sorted.size() - 1, lo + 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

std::string LatencySummary::ToString() const {
  std::ostringstream os;
  os << "n=" << count << " total=" << total << "s mean=" << mean
     << "s p50=" << p50 << "s p95=" << p95 << "s p99=" << p99
     << "s max=" << max << "s";
  return os.str();
}

LatencySummary Timeline::SummarizeRange(size_t begin, size_t end) const {
  LatencySummary summary;
  begin = std::min(begin, samples_.size());
  end = std::min(end, samples_.size());
  if (begin >= end) return summary;
  std::vector<double> sorted(samples_.begin() + begin,
                             samples_.begin() + end);
  std::sort(sorted.begin(), sorted.end());
  summary.count = static_cast<int64_t>(sorted.size());
  summary.min = sorted.front();
  summary.max = sorted.back();
  for (double s : sorted) summary.total += s;
  summary.mean = summary.total / static_cast<double>(summary.count);
  summary.p50 = PercentileOfSorted(sorted, 50.0);
  summary.p90 = PercentileOfSorted(sorted, 90.0);
  summary.p95 = PercentileOfSorted(sorted, 95.0);
  summary.p99 = PercentileOfSorted(sorted, 99.0);
  return summary;
}

std::vector<double> Timeline::MovingAverage(int window) const {
  std::vector<double> out;
  out.reserve(samples_.size());
  const int w = std::max(1, window);
  double acc = 0.0;
  for (size_t i = 0; i < samples_.size(); ++i) {
    acc += samples_[i];
    if (i >= static_cast<size_t>(w)) acc -= samples_[i - w];
    const double denom =
        static_cast<double>(std::min<size_t>(i + 1, static_cast<size_t>(w)));
    out.push_back(acc / denom);
  }
  return out;
}

double Timeline::Percentile(double p) const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return PercentileOfSorted(sorted, p);
}

}  // namespace colt
