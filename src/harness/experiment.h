#ifndef COLT_HARNESS_EXPERIMENT_H_
#define COLT_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "baseline/offline_tuner.h"
#include "catalog/catalog.h"
#include "common/provenance.h"
#include "core/colt.h"
#include "query/query.h"

namespace colt {

/// Per-query time decomposition for a COLT run (seconds).
struct QueryCost {
  double execution = 0.0;
  double profiling = 0.0;
  double build = 0.0;
  /// Build time charged for failed attempts. Part of the timeline (the
  /// system really spent it), but shown separately from useful build work.
  double wasted_build = 0.0;
  /// Slice of `execution` spent maintaining indexes for a write statement
  /// (DESIGN.md §16). Informational — NOT added again by total().
  double maintenance = 0.0;
  /// True for INSERT/UPDATE/DELETE statements.
  bool write = false;
  double total() const { return execution + profiling + build + wasted_build; }
};

/// Result of driving one workload through COLT.
struct ColtRunResult {
  std::vector<QueryCost> per_query;
  std::vector<EpochReport> epochs;
  IndexConfiguration final_materialized;
  int64_t distinct_indexes_profiled = 0;
  int64_t relevant_index_count = 0;
  /// Decision-provenance events drained from the tuner's flight recorder
  /// at the end of the run (empty unless ColtConfig::provenance_events > 0
  /// and the recorder is compiled in). Export with ProvenanceToJsonl or
  /// WriteObservabilityDir.
  std::vector<ProvenanceEvent> provenance;
  /// Prometheus text exposition of the recorder's lifetime event
  /// counters, captured before the drain (empty when provenance is off).
  std::string provenance_prometheus;

  double total_seconds() const {
    double t = 0.0;
    for (const auto& q : per_query) t += q.total();
    return t;
  }
};

/// Drives `workload` through a fresh COLT tuner over `catalog`. The
/// reported time of each query includes execution plus COLT's profiling
/// and materialization overheads (paper §6.1 evaluation metric).
/// `db` may be null (statistics-only); when given, the tuner also builds
/// physical B+-trees and applies write statements to the table data.
ColtRunResult RunColtWorkload(Catalog* catalog,
                              const std::vector<Query>& workload,
                              const ColtConfig& config,
                              CostParams cost_params = {}, uint64_t seed = 7,
                              Database* db = nullptr);

/// One robustness invariant violated during a chaos run.
struct ChaosViolation {
  /// 0-based index of the query after which the invariant failed.
  int query_index = 0;
  std::string detail;
};

/// Result of driving a workload through COLT under fault injection while
/// auditing the robustness invariants after every query.
struct ChaosRunResult {
  ColtRunResult run;
  /// First violations observed (capped; see violation_count for the total).
  std::vector<ChaosViolation> violations;
  int64_t violation_count = 0;
  /// Robustness counters collected from the tuner at the end of the run.
  int64_t injected_faults = 0;
  int64_t build_failures = 0;
  int64_t quarantine_events = 0;
  int64_t degraded_whatif = 0;
  int64_t emergency_evictions = 0;
  /// Storage budget in force when the run ended (differs from the config's
  /// budget after `budget.shrink` faults).
  int64_t final_budget_bytes = 0;

  bool ok() const { return violation_count == 0; }
};

/// Drives `workload` through a fresh COLT tuner configured with
/// `config.fault` and checks, after EVERY query:
///  * materialized bytes fit the (possibly shrunk) storage budget;
///  * no quarantined index is materialized;
///  * every materialized index exists in the catalog and the byte
///    accounting is self-consistent;
///  * when `db` is non-null, the physically built B+-trees match the
///    materialized set exactly (both directions).
/// Violations are recorded, not fatal, so one run reports them all.
ChaosRunResult RunChaosWorkload(Catalog* catalog,
                                const std::vector<Query>& workload,
                                const ColtConfig& config,
                                Database* db = nullptr,
                                CostParams cost_params = {},
                                uint64_t seed = 7);

/// Result of the OFFLINE baseline on one workload.
struct OfflineRunResult {
  std::vector<double> per_query_seconds;
  OfflineResult tuning;
  double total_seconds = 0.0;
};

/// Runs the idealized OFFLINE technique: tunes on the *exact* workload
/// (`tuning_workload`, typically the same sequence), then executes
/// `workload` under the fixed chosen configuration. Selection and
/// materialization time are excluded, as in the paper.
Result<OfflineRunResult> RunOfflineWorkload(
    Catalog* catalog, const std::vector<Query>& workload,
    const std::vector<Query>& tuning_workload, int64_t budget_bytes,
    CostParams cost_params = {});

/// Sums `values` into consecutive buckets of `bucket_size` (the paper's
/// 50-query bars in Figs. 3-4). The last bucket may be partial.
std::vector<double> BucketTotals(const std::vector<double>& values,
                                 int bucket_size);

/// Extracts total per-query seconds from a COLT run.
std::vector<double> PerQueryTotals(const ColtRunResult& run);

/// Prints a Fig. 3/4-style table: per-bucket totals for COLT and OFFLINE,
/// the shared minimum, and each technique's extra time.
void PrintComparisonTable(const std::string& title,
                          const std::vector<double>& colt_buckets,
                          const std::vector<double>& offline_buckets,
                          int bucket_size);

/// Storage budget that fits roughly `target_fit` of the given indexes
/// (paper: "we select the space budget B so that it can fit 3 to 6 of
/// these indices"): target_fit times the mean relevant index size.
int64_t BudgetForIndexes(const Catalog& catalog,
                         const std::vector<IndexId>& indexes,
                         double target_fit);

}  // namespace colt

#endif  // COLT_HARNESS_EXPERIMENT_H_
