#ifndef COLT_HARNESS_WORKLOADS_H_
#define COLT_HARNESS_WORKLOADS_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/workload.h"

namespace colt {

/// Factories for the paper's experimental workloads (§6). All are built
/// over the 4-instance TPC-H catalog from MakeTpchCatalog().
///
/// Each "focused" distribution concentrates on one schema instance and
/// implies 18 relevant (selection-predicate) indexes with a wide spread of
/// potential benefits, matching the §6.2 setup.
class ExperimentWorkloads {
 public:
  /// The fixed distribution of the stable-workload experiment (Fig. 3),
  /// focused on schema instance `instance`.
  static QueryDistribution Focused(Catalog* catalog, int instance);

  /// The 4 phase distributions of the shifting-workload experiment
  /// (Fig. 4): phase p focuses on instance p; all phases share a small
  /// common component so the optimal index sets overlap.
  static std::vector<QueryDistribution> ShiftingPhases(Catalog* catalog);

  /// Noise experiment (Fig. 6): Q1 = Focused(instance 0); Q2 is a compact
  /// distribution on instance 1 (so the optimal index sets are disjoint —
  /// the instances share no tables — and a burst concentrates enough
  /// benefit on a few indexes to be worth materializing when long enough).
  static QueryDistribution NoiseBase(Catalog* catalog) {
    return Focused(catalog, 0);
  }
  static QueryDistribution NoiseBurst(Catalog* catalog);

  /// Selection columns of a focused distribution — the experiment's
  /// "relevant indices" (18 per instance).
  static std::vector<ColumnRef> RelevantColumns(Catalog* catalog,
                                                int instance);
};

}  // namespace colt

#endif  // COLT_HARNESS_WORKLOADS_H_
