#ifndef COLT_HARNESS_WORKLOADS_H_
#define COLT_HARNESS_WORKLOADS_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/workload.h"

namespace colt {

/// Factories for the paper's experimental workloads (§6). All are built
/// over the 4-instance TPC-H catalog from MakeTpchCatalog().
///
/// Each "focused" distribution concentrates on one schema instance and
/// implies 18 relevant (selection-predicate) indexes with a wide spread of
/// potential benefits, matching the §6.2 setup.
class ExperimentWorkloads {
 public:
  /// The fixed distribution of the stable-workload experiment (Fig. 3),
  /// focused on schema instance `instance`.
  static QueryDistribution Focused(Catalog* catalog, int instance);

  /// The 4 phase distributions of the shifting-workload experiment
  /// (Fig. 4): phase p focuses on instance p; all phases share a small
  /// common component so the optimal index sets overlap.
  static std::vector<QueryDistribution> ShiftingPhases(Catalog* catalog);

  /// Noise experiment (Fig. 6): Q1 = Focused(instance 0); Q2 is a compact
  /// distribution on instance 1 (so the optimal index sets are disjoint —
  /// the instances share no tables — and a burst concentrates enough
  /// benefit on a few indexes to be worth materializing when long enough).
  static QueryDistribution NoiseBase(Catalog* catalog) {
    return Focused(catalog, 0);
  }
  static QueryDistribution NoiseBurst(Catalog* catalog);

  /// Selection columns of a focused distribution — the experiment's
  /// "relevant indices" (18 per instance).
  static std::vector<ColumnRef> RelevantColumns(Catalog* catalog,
                                                int instance);

  /// HTAP experiment (DESIGN.md §16, beyond the paper): 3 phases over
  /// schema instance 0 whose read/write ratio flips mid-run.
  ///  Phase 0 (read-heavy): lineitem analytics dominate; indexes on
  ///    l_shipdate/l_partkey earn their keep.
  ///  Phase 1 (write-heavy): the same lineitem columns are hammered by
  ///    INSERT/UPDATE statements while moderate lineitem reads persist —
  ///    the indexes stay read-useful, so only a tuner that charges
  ///    maintenance into net benefit sees they have become a net loss
  ///    and drops them; a maintenance-blind tuner retains them.
  ///  Phase 2 (read-heavy again): writes recede; the lineitem indexes are
  ///    re-adopted.
  static std::vector<QueryDistribution> HtapPhases(Catalog* catalog);

  /// Leanstore-style hot-spot write distribution on instance 0: UPDATEs
  /// and DELETEs whose WHERE ranges all land in the hottest 1% of the key
  /// domain, against a composite-key query shape (two-predicate reads on
  /// l_receiptdate+l_quantity) — exercises skewed maintenance pressure
  /// and the multi-column candidate miner under writes.
  static QueryDistribution HotSpotWrites(Catalog* catalog);
};

}  // namespace colt

#endif  // COLT_HARNESS_WORKLOADS_H_
