#ifndef COLT_HARNESS_REPORT_H_
#define COLT_HARNESS_REPORT_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/experiment.h"

namespace colt {

/// CSV writers so the figure benches' data can be re-plotted externally
/// (one row per epoch / query / bucket; header row included). Columns are
/// stable and documented in the header row itself.

/// Per-epoch diagnostics of a COLT run: epoch, what-if usage and limits,
/// re-budget ratio, candidate/cluster counts, materialized bytes.
Status WriteEpochReportCsv(const std::vector<EpochReport>& reports,
                           std::ostream& out);

/// Per-query times for COLT (execution/profiling/build) and, optionally,
/// a parallel OFFLINE per-query series (pass empty to omit).
Status WritePerQueryCsv(const ColtRunResult& colt_run,
                        const std::vector<double>& offline_seconds,
                        std::ostream& out);

/// Bucketed totals (the paper's bar charts): bucket index, COLT total,
/// OFFLINE total.
Status WriteBucketCsv(const std::vector<double>& colt_buckets,
                      const std::vector<double>& offline_buckets,
                      int bucket_size, std::ostream& out);

/// Convenience: writes `csv_producer` output to `dir/name` if `dir` (from
/// the COLT_CSV_DIR environment variable, typically) is non-empty. Returns
/// OK and does nothing when dir is empty.
Status MaybeWriteCsvFile(const std::string& dir, const std::string& name,
                         const std::function<Status(std::ostream&)>& writer);

}  // namespace colt

#endif  // COLT_HARNESS_REPORT_H_
