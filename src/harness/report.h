#ifndef COLT_HARNESS_REPORT_H_
#define COLT_HARNESS_REPORT_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/experiment.h"

namespace colt {

/// CSV writers so the figure benches' data can be re-plotted externally
/// (one row per epoch / query / bucket; header row included). Columns are
/// stable and documented in the header row itself.

/// Per-epoch diagnostics of a COLT run: epoch, what-if usage and limits,
/// re-budget ratio, candidate/cluster counts, materialized bytes.
Status WriteEpochReportCsv(const std::vector<EpochReport>& reports,
                           std::ostream& out);

/// Per-query times for COLT (execution/profiling/build) and, optionally,
/// a parallel OFFLINE per-query series (pass empty to omit).
Status WritePerQueryCsv(const ColtRunResult& colt_run,
                        const std::vector<double>& offline_seconds,
                        std::ostream& out);

/// Bucketed totals (the paper's bar charts): bucket index, COLT total,
/// OFFLINE total.
Status WriteBucketCsv(const std::vector<double>& colt_buckets,
                      const std::vector<double>& offline_buckets,
                      int bucket_size, std::ostream& out);

/// Convenience: writes `csv_producer` output to `dir/name` if `dir` (from
/// the COLT_CSV_DIR environment variable, typically) is non-empty. Returns
/// OK and does nothing when dir is empty.
Status MaybeWriteCsvFile(const std::string& dir, const std::string& name,
                         const std::function<Status(std::ostream&)>& writer);

/// Writes a live-introspection export directory (DESIGN.md §13), the
/// on-disk contract read by tools/colt_explain and tools/colt_top:
///   provenance.jsonl — the run's decision-provenance event stream;
///   metrics.prom     — Prometheus text exposition of `final_snapshot`
///                      plus the flight recorder's event counters;
///   epoch_NNNN.jsonl — one metrics snapshot per epoch that captured one
///                      (ColtConfig::epoch_metrics_snapshot).
/// The directory is created if missing (one level, like a state dir).
Status WriteObservabilityDir(const std::string& dir, const ColtRunResult& run,
                             const MetricsSnapshot& final_snapshot);

}  // namespace colt

#endif  // COLT_HARNESS_REPORT_H_
