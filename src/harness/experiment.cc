#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>

namespace colt {

ColtRunResult RunColtWorkload(Catalog* catalog,
                              const std::vector<Query>& workload,
                              const ColtConfig& config,
                              CostParams cost_params, uint64_t seed,
                              Database* db) {
  QueryOptimizer optimizer(catalog, cost_params);
  ColtTuner tuner(catalog, &optimizer, config, db, seed);
  ColtRunResult result;
  result.per_query.reserve(workload.size());
  for (const auto& q : workload) {
    const TuningStep step = tuner.OnQuery(q);
    QueryCost cost;
    cost.execution = step.execution_seconds;
    cost.profiling = step.profiling_seconds;
    cost.build = step.build_seconds;
    cost.wasted_build = step.wasted_build_seconds;
    cost.maintenance = step.maintenance_seconds;
    cost.write = q.is_write();
    result.per_query.push_back(cost);
  }
  result.epochs = tuner.epoch_reports();
  result.final_materialized = tuner.materialized();
  result.distinct_indexes_profiled = tuner.distinct_indexes_profiled();
  result.relevant_index_count =
      static_cast<int64_t>(tuner.candidates().size());
  if (ProvenanceRecorder* recorder = tuner.provenance()) {
    result.provenance_prometheus = recorder->PrometheusText();
    result.provenance = recorder->Drain();
  }
  return result;
}

ChaosRunResult RunChaosWorkload(Catalog* catalog,
                                const std::vector<Query>& workload,
                                const ColtConfig& config, Database* db,
                                CostParams cost_params, uint64_t seed) {
  constexpr int kMaxRecordedViolations = 20;
  QueryOptimizer optimizer(catalog, cost_params);
  ColtTuner tuner(catalog, &optimizer, config, db, seed);
  ChaosRunResult result;
  result.run.per_query.reserve(workload.size());

  auto violate = [&](int query_index, std::string detail) {
    ++result.violation_count;
    if (static_cast<int>(result.violations.size()) <
        kMaxRecordedViolations) {
      result.violations.push_back(
          ChaosViolation{query_index, std::move(detail)});
    }
  };

  for (size_t i = 0; i < workload.size(); ++i) {
    const TuningStep step = tuner.OnQuery(workload[i]);
    QueryCost cost;
    cost.execution = step.execution_seconds;
    cost.profiling = step.profiling_seconds;
    cost.build = step.build_seconds;
    cost.wasted_build = step.wasted_build_seconds;
    cost.maintenance = step.maintenance_seconds;
    cost.write = workload[i].is_write();
    result.run.per_query.push_back(cost);

    const int q = static_cast<int>(i);
    const IndexConfiguration& materialized = tuner.materialized();
    const Scheduler& scheduler = tuner.scheduler();

    // Invariant 1: the materialized set fits the budget in force, even
    // right after a budget.shrink fault.
    const int64_t bytes = scheduler.MaterializedBytes();
    if (bytes > tuner.storage_budget_bytes()) {
      violate(q, "materialized bytes " + std::to_string(bytes) +
                     " exceed budget " +
                     std::to_string(tuner.storage_budget_bytes()));
    }

    // Invariant 2: quarantined indexes are never materialized.
    for (IndexId id : scheduler.QuarantinedIndexes()) {
      if (materialized.Contains(id)) {
        violate(q, "quarantined index " + std::to_string(id) +
                       " is materialized");
      }
    }

    // Invariant 3: catalog consistency and honest byte accounting.
    int64_t recounted = 0;
    for (IndexId id : materialized.ids()) {
      if (!catalog->HasIndex(id)) {
        violate(q, "materialized index " + std::to_string(id) +
                       " missing from catalog");
        continue;
      }
      recounted += catalog->index(id).size_bytes;
    }
    if (recounted != bytes) {
      violate(q, "byte accounting mismatch: recounted " +
                     std::to_string(recounted) + " vs reported " +
                     std::to_string(bytes));
    }

    // Invariant 4 (physical mode): the built B+-trees equal the
    // materialized set, both directions.
    if (db != nullptr) {
      for (IndexId id : materialized.ids()) {
        if (!db->HasBuiltIndex(id)) {
          violate(q, "materialized index " + std::to_string(id) +
                         " has no physical B+-tree");
        }
      }
      for (IndexId id : db->BuiltIndexIds()) {
        if (!materialized.Contains(id)) {
          violate(q, "physical B+-tree " + std::to_string(id) +
                         " not in the materialized set");
        }
      }
    }
  }

  result.run.epochs = tuner.epoch_reports();
  result.run.final_materialized = tuner.materialized();
  result.run.distinct_indexes_profiled = tuner.distinct_indexes_profiled();
  result.run.relevant_index_count =
      static_cast<int64_t>(tuner.candidates().size());
  result.injected_faults =
      static_cast<int64_t>(tuner.fault_injector().total_fires());
  result.build_failures = tuner.scheduler().build_failures();
  result.quarantine_events = tuner.scheduler().quarantine_events();
  result.degraded_whatif = tuner.degraded_whatif_total();
  result.emergency_evictions = tuner.emergency_evictions_total();
  result.final_budget_bytes = tuner.storage_budget_bytes();
  if (ProvenanceRecorder* recorder = tuner.provenance()) {
    result.run.provenance_prometheus = recorder->PrometheusText();
    result.run.provenance = recorder->Drain();
  }
  return result;
}

Result<OfflineRunResult> RunOfflineWorkload(
    Catalog* catalog, const std::vector<Query>& workload,
    const std::vector<Query>& tuning_workload, int64_t budget_bytes,
    CostParams cost_params) {
  QueryOptimizer optimizer(catalog, cost_params);
  OfflineTuner tuner(catalog, &optimizer);
  OfflineRunResult result;
  COLT_ASSIGN_OR_RETURN(result.tuning,
                        tuner.Tune(tuning_workload, budget_bytes));
  result.per_query_seconds.reserve(workload.size());
  for (const auto& q : workload) {
    const PlanResult plan =
        optimizer.Optimize(q, result.tuning.configuration);
    const double seconds = optimizer.cost_model().ToSeconds(plan.cost);
    result.per_query_seconds.push_back(seconds);
    result.total_seconds += seconds;
  }
  return result;
}

std::vector<double> BucketTotals(const std::vector<double>& values,
                                 int bucket_size) {
  std::vector<double> buckets;
  double acc = 0.0;
  int in_bucket = 0;
  for (double v : values) {
    acc += v;
    if (++in_bucket == bucket_size) {
      buckets.push_back(acc);
      acc = 0.0;
      in_bucket = 0;
    }
  }
  if (in_bucket > 0) buckets.push_back(acc);
  return buckets;
}

std::vector<double> PerQueryTotals(const ColtRunResult& run) {
  std::vector<double> out;
  out.reserve(run.per_query.size());
  for (const auto& q : run.per_query) out.push_back(q.total());
  return out;
}

void PrintComparisonTable(const std::string& title,
                          const std::vector<double>& colt_buckets,
                          const std::vector<double>& offline_buckets,
                          int bucket_size) {
  std::printf("%s\n", title.c_str());
  std::printf("%10s %12s %12s %12s %12s %12s\n", "queries", "COLT(s)",
              "OFFLINE(s)", "min(s)", "colt_extra", "off_extra");
  const size_t n = std::min(colt_buckets.size(), offline_buckets.size());
  double colt_total = 0.0, offline_total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double c = colt_buckets[i];
    const double o = offline_buckets[i];
    colt_total += c;
    offline_total += o;
    const double mn = std::min(c, o);
    std::printf("%10zu %12.1f %12.1f %12.1f %12.1f %12.1f\n",
                (i + 1) * static_cast<size_t>(bucket_size), c, o, mn,
                std::max(0.0, c - o), std::max(0.0, o - c));
  }
  std::printf("%10s %12.1f %12.1f   (COLT/OFFLINE = %.3f)\n", "total",
              colt_total, offline_total,
              offline_total > 0 ? colt_total / offline_total : 0.0);
}

int64_t BudgetForIndexes(const Catalog& catalog,
                         const std::vector<IndexId>& indexes,
                         double target_fit) {
  if (indexes.empty()) return 0;
  int64_t total = 0;
  for (IndexId id : indexes) total += catalog.index(id).size_bytes;
  const double mean =
      static_cast<double>(total) / static_cast<double>(indexes.size());
  return static_cast<int64_t>(mean * target_fit);
}

}  // namespace colt
