#include "harness/workloads.h"

#include "common/logging.h"

namespace colt {

namespace {

ColumnRef Col(Catalog* catalog, const std::string& table,
              const std::string& column) {
  const TableId t = catalog->FindTable(table);
  COLT_CHECK(t != kInvalidTableId) << "no table " << table;
  const ColumnId c = catalog->table(t).FindColumn(column);
  COLT_CHECK(c != kInvalidColumnId) << "no column " << column;
  return ColumnRef{t, c};
}

SelectionSpec Sel(Catalog* catalog, const std::string& table,
                  const std::string& column, double lo, double hi) {
  SelectionSpec spec;
  spec.column = Col(catalog, table, column);
  spec.min_selectivity = lo;
  spec.max_selectivity = hi;
  return spec;
}

QueryTemplate Single(Catalog* catalog, const std::string& table,
                     std::vector<SelectionSpec> selections,
                     const std::string& name) {
  QueryTemplate t;
  t.name = name;
  t.tables = {catalog->FindTable(table)};
  t.selections = std::move(selections);
  return t;
}

QueryTemplate Join2(Catalog* catalog, const std::string& t1,
                    const std::string& c1, const std::string& t2,
                    const std::string& c2,
                    std::vector<SelectionSpec> selections,
                    const std::string& name) {
  QueryTemplate t;
  t.name = name;
  t.tables = {catalog->FindTable(t1), catalog->FindTable(t2)};
  t.joins = {JoinPredicate{Col(catalog, t1, c1), Col(catalog, t2, c2)}};
  t.selections = std::move(selections);
  return t;
}

QueryTemplate Insert(Catalog* catalog, const std::string& table,
                     int64_t min_rows, int64_t max_rows,
                     const std::string& name) {
  QueryTemplate t;
  t.name = name;
  t.kind = StatementKind::kInsert;
  t.tables = {catalog->FindTable(table)};
  t.min_insert_rows = min_rows;
  t.max_insert_rows = max_rows;
  return t;
}

QueryTemplate Update(Catalog* catalog, const std::string& table,
                     std::vector<std::string> set_columns,
                     std::vector<SelectionSpec> selections,
                     const std::string& name, double hot_fraction = 0.0) {
  QueryTemplate t;
  t.name = name;
  t.kind = StatementKind::kUpdate;
  t.tables = {catalog->FindTable(table)};
  for (const std::string& c : set_columns) {
    t.set_columns.push_back(Col(catalog, table, c));
  }
  t.selections = std::move(selections);
  t.hot_fraction = hot_fraction;
  return t;
}

QueryTemplate Delete(Catalog* catalog, const std::string& table,
                     std::vector<SelectionSpec> selections,
                     const std::string& name, double hot_fraction = 0.0) {
  QueryTemplate t;
  t.name = name;
  t.kind = StatementKind::kDelete;
  t.tables = {catalog->FindTable(table)};
  t.selections = std::move(selections);
  t.hot_fraction = hot_fraction;
  return t;
}

}  // namespace

QueryDistribution ExperimentWorkloads::Focused(Catalog* catalog,
                                               int instance) {
  const std::string s = "_" + std::to_string(instance);
  const std::string li = "lineitem" + s;
  const std::string od = "orders" + s;
  const std::string cu = "customer" + s;
  const std::string pa = "part" + s;
  const std::string ps = "partsupp" + s;
  const std::string su = "supplier" + s;

  QueryDistribution dist;
  dist.name = "focused" + s;
  auto add = [&](QueryTemplate t, double w) {
    dist.templates.push_back(std::move(t));
    dist.weights.push_back(w);
  };

  // Highly selective single-table analytics on the fact tables — the high
  // potential-benefit indexes.
  add(Single(catalog, li, {Sel(catalog, li, "l_shipdate", 0.001, 0.012)},
             "li_shipdate"), 3.0);
  add(Single(catalog, li, {Sel(catalog, li, "l_partkey", 0.0005, 0.004)},
             "li_partkey"), 2.0);
  add(Single(catalog, li, {Sel(catalog, li, "l_suppkey", 0.0005, 0.004)},
             "li_suppkey"), 1.5);
  add(Single(catalog, li,
             {Sel(catalog, li, "l_extendedprice", 0.001, 0.008)},
             "li_extprice"), 1.5);
  add(Single(catalog, li,
             {Sel(catalog, li, "l_receiptdate", 0.002, 0.012),
              Sel(catalog, li, "l_quantity", 0.10, 0.40)},
             "li_receipt_qty"), 1.0);
  add(Single(catalog, li, {Sel(catalog, li, "l_commitdate", 0.002, 0.010)},
             "li_commitdate"), 0.7);

  add(Single(catalog, od, {Sel(catalog, od, "o_orderdate", 0.002, 0.018)},
             "od_orderdate"), 2.0);
  add(Single(catalog, od, {Sel(catalog, od, "o_custkey", 0.001, 0.008)},
             "od_custkey"), 1.5);
  add(Single(catalog, od, {Sel(catalog, od, "o_totalprice", 0.002, 0.014)},
             "od_totalprice"), 1.0);
  add(Single(catalog, od, {Sel(catalog, od, "o_clerk", 0.001, 0.006)},
             "od_clerk"), 0.7);

  // Dimension-table lookups — medium/low benefit.
  add(Single(catalog, cu, {Sel(catalog, cu, "c_acctbal", 0.002, 0.02)},
             "cu_acctbal"), 1.0);
  add(Single(catalog, cu, {Sel(catalog, cu, "c_custkey", 0.001, 0.01)},
             "cu_custkey"), 0.7);
  add(Single(catalog, pa, {Sel(catalog, pa, "p_retailprice", 0.002, 0.02)},
             "pa_retailprice"), 1.0);
  add(Single(catalog, pa, {Sel(catalog, pa, "p_size", 0.02, 0.06)},
             "pa_size"), 0.6);
  add(Single(catalog, ps, {Sel(catalog, ps, "ps_partkey", 0.001, 0.008)},
             "ps_partkey"), 1.0);
  add(Single(catalog, ps, {Sel(catalog, ps, "ps_availqty", 0.005, 0.02)},
             "ps_availqty"), 0.8);
  add(Single(catalog, su, {Sel(catalog, su, "s_acctbal", 0.002, 0.02)},
             "su_acctbal"), 0.8);

  // Join workloads (interactive drill-downs).
  add(Join2(catalog, od, "o_orderkey", li, "l_orderkey",
            {Sel(catalog, od, "o_orderdate", 0.0005, 0.004)},
            "od_li_join"), 1.5);
  add(Join2(catalog, cu, "c_custkey", od, "o_custkey",
            {Sel(catalog, cu, "c_acctbal", 0.001, 0.01)},
            "cu_od_join"), 1.0);

  return dist;
}

std::vector<QueryDistribution> ExperimentWorkloads::ShiftingPhases(
    Catalog* catalog) {
  // All four phases draw on the *same* schema instance and the same pool of
  // 18 relevant attributes (paper: "the disk budget and total number of
  // relevant indices are the same as the previous experiment"), but each
  // phase concentrates on a different subset — in particular each phase
  // leans on a different large lineitem attribute, so no single
  // budget-feasible configuration can serve every phase. Adjacent phases
  // share attributes ("some overlap among the optimal index sets").
  const std::string li = "lineitem_0";
  const std::string od = "orders_0";
  const std::string cu = "customer_0";
  const std::string pa = "part_0";
  const std::string ps = "partsupp_0";
  const std::string su = "supplier_0";

  std::vector<QueryDistribution> phases(4);
  auto add = [&](int p, QueryTemplate t, double w) {
    phases[p].templates.push_back(std::move(t));
    phases[p].weights.push_back(w);
  };
  for (int p = 0; p < 4; ++p) phases[p].name = "phase" + std::to_string(p);

  // Phase 1: date-range analytics over lineitem (l_shipdate is the
  // phase's heavy attribute).
  add(0, Single(catalog, li, {Sel(catalog, li, "l_shipdate", 0.0008, 0.008)},
                "p1_li_shipdate"), 4.0);
  add(0, Single(catalog, od, {Sel(catalog, od, "o_orderdate", 0.002, 0.018)},
                "p1_od_orderdate"), 1.5);
  add(0, Single(catalog, cu, {Sel(catalog, cu, "c_acctbal", 0.002, 0.02)},
                "p1_cu_acctbal"), 0.8);
  add(0, Join2(catalog, od, "o_orderkey", li, "l_orderkey",
               {Sel(catalog, od, "o_orderdate", 0.0005, 0.004)},
               "p1_od_li_join"), 1.0);
  add(0, Single(catalog, li, {Sel(catalog, li, "l_partkey", 0.0005, 0.004)},
                "p1_li_partkey"), 0.5);

  // Phase 2: supplier-oriented reporting; the heavy attribute shifts to
  // l_suppkey, with orders/customer lookups. This is the phase the paper
  // highlights (49% shorter under COLT) because the off-line compromise
  // configuration cannot afford a second lineitem index.
  add(1, Single(catalog, li, {Sel(catalog, li, "l_suppkey", 0.0008, 0.008)},
                "p2_li_suppkey"), 4.0);
  add(1, Single(catalog, od, {Sel(catalog, od, "o_custkey", 0.001, 0.008)},
                "p2_od_custkey"), 2.0);
  add(1, Single(catalog, od, {Sel(catalog, od, "o_totalprice", 0.002, 0.014)},
                "p2_od_totalprice"), 1.5);
  add(1, Single(catalog, cu, {Sel(catalog, cu, "c_custkey", 0.001, 0.01)},
                "p2_cu_custkey"), 1.0);
  add(1, Single(catalog, cu, {Sel(catalog, cu, "c_acctbal", 0.002, 0.02)},
                "p2_cu_acctbal"), 1.0);  // overlap with phase 1
  add(1, Join2(catalog, cu, "c_custkey", od, "o_custkey",
               {Sel(catalog, cu, "c_acctbal", 0.001, 0.01)},
               "p2_cu_od_join"), 1.0);

  // Phase 3: shipment-latency auditing around l_commitdate, plus partsupp
  // availability checks.
  add(2, Single(catalog, li, {Sel(catalog, li, "l_commitdate", 0.0008, 0.008)},
                "p3_li_commitdate"), 4.0);
  add(2, Single(catalog, ps, {Sel(catalog, ps, "ps_partkey", 0.001, 0.008)},
                "p3_ps_partkey"), 1.5);
  add(2, Single(catalog, ps, {Sel(catalog, ps, "ps_availqty", 0.005, 0.02)},
                "p3_ps_availqty"), 1.0);
  add(2, Single(catalog, od, {Sel(catalog, od, "o_clerk", 0.001, 0.006)},
                "p3_od_clerk"), 0.7);
  add(2, Single(catalog, li, {Sel(catalog, li, "l_shipdate", 0.0008, 0.008)},
                "p3_li_shipdate"), 0.8);  // overlap with phase 1
  add(2, Single(catalog, li,
                {Sel(catalog, li, "l_receiptdate", 0.001, 0.012)},
                "p3_li_receiptdate"), 0.5);
  add(2, Single(catalog, od, {Sel(catalog, od, "o_totalprice", 0.002, 0.014)},
                "p3_od_totalprice"), 0.6);  // overlap with phase 2

  // Phase 4: pricing analysis around l_extendedprice plus part/supplier
  // dimensions.
  add(3, Single(catalog, li,
                {Sel(catalog, li, "l_extendedprice", 0.0008, 0.008)},
                "p4_li_extprice"), 4.0);
  add(3, Single(catalog, pa,
                {Sel(catalog, pa, "p_retailprice", 0.002, 0.02)},
                "p4_pa_retailprice"), 1.5);
  add(3, Single(catalog, pa, {Sel(catalog, pa, "p_size", 0.02, 0.06)},
                "p4_pa_size"), 0.6);
  add(3, Single(catalog, pa, {Sel(catalog, pa, "p_partkey", 0.001, 0.01)},
                "p4_pa_partkey"), 0.4);
  add(3, Single(catalog, su, {Sel(catalog, su, "s_acctbal", 0.002, 0.02)},
                "p4_su_acctbal"), 1.0);
  add(3, Single(catalog, od, {Sel(catalog, od, "o_clerk", 0.001, 0.006)},
                "p4_od_clerk"), 1.2);  // overlap with phase 3
  add(3, Single(catalog, od, {Sel(catalog, od, "o_totalprice", 0.002, 0.014)},
                "p4_od_totalprice"), 1.0);  // overlap with phase 2

  return phases;
}

QueryDistribution ExperimentWorkloads::NoiseBurst(Catalog* catalog) {
  const std::string li = "lineitem_1";
  const std::string od = "orders_1";
  const std::string cu = "customer_1";
  QueryDistribution dist;
  dist.name = "noise_q2";
  auto add = [&](QueryTemplate t, double w) {
    dist.templates.push_back(std::move(t));
    dist.weights.push_back(w);
  };
  add(Single(catalog, li, {Sel(catalog, li, "l_shipdate", 0.0008, 0.008)},
             "q2_li_shipdate"), 4.0);
  add(Single(catalog, li, {Sel(catalog, li, "l_partkey", 0.0005, 0.004)},
             "q2_li_partkey"), 2.0);
  add(Single(catalog, od, {Sel(catalog, od, "o_orderdate", 0.002, 0.018)},
             "q2_od_orderdate"), 1.5);
  add(Single(catalog, cu, {Sel(catalog, cu, "c_acctbal", 0.002, 0.02)},
             "q2_cu_acctbal"), 0.8);
  return dist;
}

std::vector<ColumnRef> ExperimentWorkloads::RelevantColumns(Catalog* catalog,
                                                            int instance) {
  return Focused(catalog, instance).RelevantColumns();
}

std::vector<QueryDistribution> ExperimentWorkloads::HtapPhases(
    Catalog* catalog) {
  const std::string li = "lineitem_0";
  const std::string od = "orders_0";

  std::vector<QueryDistribution> phases(3);
  auto add = [&](int p, QueryTemplate t, double w) {
    phases[p].templates.push_back(std::move(t));
    phases[p].weights.push_back(w);
  };
  phases[0].name = "htap_read_heavy";
  phases[1].name = "htap_write_heavy";
  phases[2].name = "htap_read_again";

  // Phase 0 — read-heavy OLAP with a trickle of inserts (~5% writes):
  // lineitem analytics dominate, so indexes on l_shipdate / l_partkey pay
  // for themselves many times over.
  add(0, Single(catalog, li, {Sel(catalog, li, "l_shipdate", 0.0008, 0.008)},
                "h1_li_shipdate"), 4.0);
  add(0, Single(catalog, li, {Sel(catalog, li, "l_partkey", 0.0005, 0.004)},
                "h1_li_partkey"), 2.0);
  add(0, Single(catalog, od, {Sel(catalog, od, "o_orderdate", 0.002, 0.018)},
                "h1_od_orderdate"), 1.5);
  add(0, Insert(catalog, li, 50, 200, "h1_li_trickle_insert"), 0.4);

  // Phase 1 — write-heavy OLTP (~3/4 writes) hammering exactly the
  // columns phase 0's winners index: bulk inserts into lineitem plus
  // updates assigning l_shipdate / l_partkey. Crucially, moderate
  // lineitem reads PERSIST: the indexes still deliver positive read
  // benefit, so a maintenance-blind tuner retains them and keeps paying
  // write amplification on every statement. With charging on, the
  // Self-Organizer sees benefit minus upkeep go negative and drops them —
  // the "write-hot but read-useful" case a pure benefit signal cannot
  // distinguish (DESIGN.md §16).
  // Bulk INSERTs are the maintenance driver: they dirty every lineitem
  // index without needing a WHERE locate step, so dropping the indexes
  // saves their upkeep without turning any statement into a full scan.
  // (UPDATE/DELETE pressure — where the index also helps *locate* the
  // affected rows — is exercised by the HotSpotWrites scenario.)
  add(1, Insert(catalog, li, 1000, 3000, "h2_li_bulk_insert"), 6.0);
  add(1, Single(catalog, li, {Sel(catalog, li, "l_shipdate", 0.0008, 0.008)},
                "h2_li_shipdate_read"), 0.3);
  add(1, Single(catalog, li, {Sel(catalog, li, "l_partkey", 0.0005, 0.004)},
                "h2_li_partkey_read"), 0.2);
  add(1, Single(catalog, od, {Sel(catalog, od, "o_orderdate", 0.002, 0.018)},
                "h2_od_orderdate"), 1.0);

  // Phase 2 — the write wave recedes and the phase-0 analytics return,
  // so the dropped lineitem indexes become worth materializing again.
  add(2, Single(catalog, li, {Sel(catalog, li, "l_shipdate", 0.0008, 0.008)},
                "h3_li_shipdate"), 4.0);
  add(2, Single(catalog, li, {Sel(catalog, li, "l_partkey", 0.0005, 0.004)},
                "h3_li_partkey"), 2.0);
  add(2, Single(catalog, od, {Sel(catalog, od, "o_orderdate", 0.002, 0.018)},
                "h3_od_orderdate"), 1.5);
  add(2, Insert(catalog, li, 50, 200, "h3_li_trickle_insert"), 0.4);

  return phases;
}

QueryDistribution ExperimentWorkloads::HotSpotWrites(Catalog* catalog) {
  const std::string li = "lineitem_0";
  QueryDistribution dist;
  dist.name = "hotspot_writes";
  auto add = [&](QueryTemplate t, double w) {
    dist.templates.push_back(std::move(t));
    dist.weights.push_back(w);
  };
  // Composite-key read shape: two predicates on one table, the pattern
  // the multi-column candidate miner turns into (l_receiptdate,
  // l_quantity) composite candidates.
  add(Single(catalog, li,
             {Sel(catalog, li, "l_receiptdate", 0.002, 0.012),
              Sel(catalog, li, "l_quantity", 0.10, 0.40)},
             "hs_li_receipt_qty"), 2.0);
  // Hot-spot writes: every WHERE range lands in the lowest 1% of the key
  // domain (leanstore-style skew), so a few leaf pages absorb all churn.
  add(Update(catalog, li, {"l_quantity"},
             {Sel(catalog, li, "l_receiptdate", 0.001, 0.005)},
             "hs_li_hot_update", /*hot_fraction=*/0.01), 3.0);
  add(Delete(catalog, li,
             {Sel(catalog, li, "l_receiptdate", 0.0005, 0.002)},
             "hs_li_hot_delete", /*hot_fraction=*/0.01), 1.0);
  add(Insert(catalog, li, 100, 400, "hs_li_insert"), 1.0);
  return dist;
}

}  // namespace colt
