#include "harness/report.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <functional>
#include <ostream>

#include "common/provenance.h"

namespace colt {

Status WriteEpochReportCsv(const std::vector<EpochReport>& reports,
                           std::ostream& out) {
  // New columns append at the very end of each row: the gnuplot scripts
  // address columns positionally, so existing positions must not shift.
  // The write columns only appear when the run observed write statements,
  // so the CSVs of read-only traces stay byte-identical (DESIGN.md §16).
  bool with_writes = false;
  for (const auto& e : reports) {
    if (e.write_queries > 0) with_writes = true;
  }
  out << "epoch,whatif_used,whatif_limit,next_whatif_limit,rebudget_ratio,"
         "candidates,clusters,hot,materialized,materialized_bytes,"
         "degraded_whatif,build_failures,quarantined,storage_budget_bytes,"
         "emergency_evictions,wasted_build_s";
  if (with_writes) out << ",write_queries,maintenance_charged";
  out << '\n';
  for (const auto& e : reports) {
    out << e.epoch << ',' << e.whatif_used << ',' << e.whatif_limit << ','
        << e.next_whatif_limit << ',' << e.rebudget_ratio << ','
        << e.candidate_count << ',' << e.cluster_count << ','
        << e.hot_ids.size() << ',' << e.materialized_ids.size() << ','
        << e.materialized_bytes << ',' << e.degraded_whatif << ','
        << e.build_failures << ',' << e.quarantined_ids.size() << ','
        << e.storage_budget_bytes << ',' << e.emergency_evictions << ','
        << e.wasted_build_seconds;
    if (with_writes) {
      out << ',' << e.write_queries << ',' << e.maintenance_charged;
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("csv write failed");
  return Status::OK();
}

Status WritePerQueryCsv(const ColtRunResult& colt_run,
                        const std::vector<double>& offline_seconds,
                        std::ostream& out) {
  const bool with_offline = !offline_seconds.empty();
  if (with_offline &&
      offline_seconds.size() != colt_run.per_query.size()) {
    return Status::InvalidArgument("offline series length mismatch");
  }
  // colt_wasted_build_s is appended after offline_s: the gnuplot scripts
  // read colt_total_s/offline_s by position (columns 5 and 6). The
  // maintenance column only appears when the run contains write statements
  // (read-only trace CSVs stay byte-identical; DESIGN.md §16); the value
  // is the slice of colt_execution_s spent on index upkeep, not an
  // addition to the total.
  bool with_writes = false;
  for (const QueryCost& q : colt_run.per_query) {
    if (q.write) with_writes = true;
  }
  out << "query,colt_execution_s,colt_profiling_s,colt_build_s,colt_total_s";
  if (with_offline) out << ",offline_s";
  out << ",colt_wasted_build_s";
  if (with_writes) out << ",colt_maintenance_s";
  out << '\n';
  for (size_t i = 0; i < colt_run.per_query.size(); ++i) {
    const QueryCost& q = colt_run.per_query[i];
    out << i << ',' << q.execution << ',' << q.profiling << ',' << q.build
        << ',' << q.total();
    if (with_offline) out << ',' << offline_seconds[i];
    out << ',' << q.wasted_build;
    if (with_writes) out << ',' << q.maintenance;
    out << '\n';
  }
  if (!out.good()) return Status::Internal("csv write failed");
  return Status::OK();
}

Status WriteBucketCsv(const std::vector<double>& colt_buckets,
                      const std::vector<double>& offline_buckets,
                      int bucket_size, std::ostream& out) {
  out << "queries,colt_s,offline_s\n";
  const size_t n = std::min(colt_buckets.size(), offline_buckets.size());
  for (size_t i = 0; i < n; ++i) {
    out << (i + 1) * static_cast<size_t>(bucket_size) << ','
        << colt_buckets[i] << ',' << offline_buckets[i] << '\n';
  }
  if (!out.good()) return Status::Internal("csv write failed");
  return Status::OK();
}

Status MaybeWriteCsvFile(const std::string& dir, const std::string& name,
                         const std::function<Status(std::ostream&)>& writer) {
  if (dir.empty()) return Status::OK();
  const std::string path = dir + "/" + name;
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return writer(out);
}

namespace {

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out << content;
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace

Status WriteObservabilityDir(const std::string& dir, const ColtRunResult& run,
                             const MetricsSnapshot& final_snapshot) {
  if (dir.empty()) {
    return Status::InvalidArgument("observability dir must not be empty");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir failed for " + dir);
  }
  COLT_RETURN_IF_ERROR(WriteTextFile(dir + "/provenance.jsonl",
                                     ProvenanceToJsonl(run.provenance)));
  COLT_RETURN_IF_ERROR(
      WriteTextFile(dir + "/metrics.prom", ToPrometheusText(final_snapshot) +
                                               run.provenance_prometheus));
  for (const EpochReport& e : run.epochs) {
    const MetricsSnapshot& snap = e.metrics;
    if (snap.counters.empty() && snap.gauges.empty() &&
        snap.histograms.empty()) {
      continue;  // this epoch captured no snapshot
    }
    char name[32];
    std::snprintf(name, sizeof(name), "epoch_%04d.jsonl", e.epoch);
    COLT_RETURN_IF_ERROR(WriteTextFile(dir + "/" + name, snap.ToJsonl()));
  }
  return Status::OK();
}

}  // namespace colt
