#ifndef COLT_HARNESS_TIMELINE_H_
#define COLT_HARNESS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace colt {

/// Latency distribution summary (seconds).
struct LatencySummary {
  int64_t count = 0;
  double total = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  std::string ToString() const;
};

/// Collects per-query latencies and summarizes them: percentiles over the
/// whole run or any sub-range, and a trailing moving average for
/// convergence plots. Used by the harness to report richer statistics than
/// bucket totals.
class Timeline {
 public:
  Timeline() = default;

  void Record(double seconds) { samples_.push_back(seconds); }
  void RecordAll(const std::vector<double>& seconds) {
    samples_.insert(samples_.end(), seconds.begin(), seconds.end());
  }

  int64_t size() const { return static_cast<int64_t>(samples_.size()); }
  const std::vector<double>& samples() const { return samples_; }

  /// Summary over all samples.
  LatencySummary Summarize() const {
    return SummarizeRange(0, samples_.size());
  }

  /// Summary over samples [begin, end). Clamped to the valid range.
  LatencySummary SummarizeRange(size_t begin, size_t end) const;

  /// Trailing moving average with the given window (same length as the
  /// sample vector; the first window-1 entries average what is available).
  std::vector<double> MovingAverage(int window) const;

  /// The p-th percentile (0 < p <= 100) by linear interpolation between
  /// closest ranks; 0 for an empty timeline.
  double Percentile(double p) const;

 private:
  std::vector<double> samples_;
};

}  // namespace colt

#endif  // COLT_HARNESS_TIMELINE_H_
