#ifndef COLT_BASELINE_OFFLINE_TUNER_H_
#define COLT_BASELINE_OFFLINE_TUNER_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "query/query.h"

namespace colt {

/// Result of off-line tuning.
struct OfflineResult {
  /// The chosen index set (fits the storage budget).
  IndexConfiguration configuration;
  /// Total workload cost (cost units) under the chosen configuration.
  double total_cost = 0.0;
  /// Total workload cost with no extra indexes (for reference).
  double base_cost = 0.0;
  /// Number of complete configurations scored.
  int64_t configurations_evaluated = 0;
  /// Relevant single-column indexes considered.
  std::vector<IndexId> relevant_indexes;
  /// True if the exhaustive search was used (vs. the greedy fallback for
  /// very large relevant sets).
  bool exhaustive = true;
};

/// The paper's idealized OFFLINE baseline (§6.1): complete knowledge of the
/// workload, exhaustive search over all single-column index sets that fit
/// the storage budget, each configuration scored with the same what-if
/// optimizer COLT uses. Strictly dominates heuristic off-line tools in this
/// search space.
///
/// Tractability: a query's cost depends only on the candidate indexes
/// relevant to it, so per-query costs are memoized per relevant-subset and
/// queries are grouped by identical relevant sets; the exhaustive sweep then
/// scores each configuration in O(#groups).
class OfflineTuner {
 public:
  /// Exhaustive search is used while the relevant index count is at most
  /// `max_exhaustive_indexes`; beyond that a greedy forward-selection
  /// fallback runs (and the result is flagged non-exhaustive).
  /// By default only selection-predicate columns are considered, matching
  /// the index space COLT mines (the paper's "18 relevant indices" count
  /// selection attributes); set `include_join_columns` to widen the space
  /// to join attributes as well.
  OfflineTuner(Catalog* catalog, QueryOptimizer* optimizer,
               int max_exhaustive_indexes = 22,
               bool include_join_columns = false)
      : catalog_(catalog),
        optimizer_(optimizer),
        max_exhaustive_indexes_(max_exhaustive_indexes),
        include_join_columns_(include_join_columns) {}

  /// Selects the optimal index set for `workload` within `budget_bytes`.
  Result<OfflineResult> Tune(const std::vector<Query>& workload,
                             int64_t budget_bytes);

  /// Indexes relevant to the workload (selection and join columns).
  Result<std::vector<IndexId>> MineRelevantIndexes(
      const std::vector<Query>& workload);

 private:
  Catalog* catalog_;
  QueryOptimizer* optimizer_;
  int max_exhaustive_indexes_;
  bool include_join_columns_;
};

}  // namespace colt

#endif  // COLT_BASELINE_OFFLINE_TUNER_H_
