#ifndef COLT_BASELINE_REACTIVE_TUNER_H_
#define COLT_BASELINE_REACTIVE_TUNER_H_

#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "core/scheduler.h"
#include "optimizer/optimizer.h"
#include "query/query.h"

namespace colt {

/// What a reactive step did / cost.
struct ReactiveStep {
  PlanResult plan;
  double execution_seconds = 0.0;
  double profiling_seconds = 0.0;
  double build_seconds = 0.0;
  int whatif_calls = 0;
  std::vector<IndexAction> actions;
};

/// REACTIVE — an unregulated on-line tuner in the mold of the prior work
/// the paper positions against (QUIET, Hammer & Chan): it profiles *every*
/// relevant candidate of *every* query through the what-if interface,
/// materializes an index as soon as its accumulated measured gain exceeds
/// its materialization cost, and evicts the least-recently-beneficial index
/// when over budget. There is no budget on what-if calls, no clustering or
/// sampling, no forecasting and no self-regulation — exactly the
/// "operates with the same intensity [...] not straightforward to control
/// the number of what-if calls" behaviour §1 describes.
class ReactiveTuner {
 public:
  struct Options {
    int64_t storage_budget_bytes = 512LL * 1024 * 1024;
    /// Gains older than this many queries decay away (sliding window), so
    /// the tuner eventually drops indexes the workload abandoned.
    int gain_window_queries = 120;
    double whatif_call_seconds = 0.02;
  };

  ReactiveTuner(Catalog* catalog, QueryOptimizer* optimizer, Options options)
      : catalog_(catalog),
        optimizer_(optimizer),
        options_(options),
        scheduler_(catalog, &optimizer->cost_model(), nullptr) {}

  /// Observes one query: plans it, what-ifs every relevant candidate, and
  /// reacts immediately if any candidate has paid for itself.
  ReactiveStep OnQuery(const Query& q);

  const IndexConfiguration& materialized() const {
    return scheduler_.materialized();
  }
  int64_t total_whatif_calls() const { return total_whatif_calls_; }

 private:
  struct CandidateState {
    /// (query number, measured gain) pairs within the window.
    std::vector<std::pair<int64_t, double>> gains;
    int64_t last_useful_query = 0;
  };

  void ExpireOldGains(CandidateState* state) const;
  double WindowGain(const CandidateState& state) const;

  Catalog* catalog_;
  QueryOptimizer* optimizer_;
  Options options_;
  Scheduler scheduler_;
  std::unordered_map<IndexId, CandidateState> candidates_;
  int64_t query_number_ = 0;
  int64_t total_whatif_calls_ = 0;
};

}  // namespace colt

#endif  // COLT_BASELINE_REACTIVE_TUNER_H_
