#include "baseline/reactive_tuner.h"

#include <algorithm>

#include "common/logging.h"

namespace colt {

void ReactiveTuner::ExpireOldGains(CandidateState* state) const {
  const int64_t horizon = query_number_ - options_.gain_window_queries;
  auto& gains = state->gains;
  gains.erase(std::remove_if(gains.begin(), gains.end(),
                             [&](const std::pair<int64_t, double>& g) {
                               return g.first < horizon;
                             }),
              gains.end());
}

double ReactiveTuner::WindowGain(const CandidateState& state) const {
  double total = 0.0;
  for (const auto& entry : state.gains) total += entry.second;
  return total;
}

ReactiveStep ReactiveTuner::OnQuery(const Query& q) {
  ++query_number_;
  ReactiveStep step;
  const IndexConfiguration& materialized = scheduler_.materialized();
  step.plan = optimizer_->Optimize(q, materialized);
  step.execution_seconds = optimizer_->cost_model().ToSeconds(step.plan.cost);

  // Profile EVERY candidate implied by this query's selections, plus every
  // materialized index it could use — no budget, no sampling.
  std::vector<IndexId> probation;
  for (const auto& pred : q.selections()) {
    Result<IndexDescriptor> desc = catalog_->IndexOn(pred.column);
    if (desc.ok()) probation.push_back(desc->id);
  }
  std::sort(probation.begin(), probation.end());
  probation.erase(std::unique(probation.begin(), probation.end()),
                  probation.end());
  if (!probation.empty()) {
    const auto gains = optimizer_->WhatIfOptimize(q, materialized, probation);
    step.whatif_calls = static_cast<int>(gains.size());
    total_whatif_calls_ += step.whatif_calls;
    step.profiling_seconds = step.whatif_calls * options_.whatif_call_seconds;
    for (const auto& g : gains) {
      CandidateState& state = candidates_[g.index];
      state.gains.emplace_back(query_number_, std::max(0.0, g.gain));
      if (g.gain > 0.0) state.last_useful_query = query_number_;
      ExpireOldGains(&state);
    }
  }

  // React immediately: materialize any candidate whose windowed gain has
  // exceeded its build cost, evicting stale indexes to make room.
  IndexConfiguration desired = materialized;
  for (auto& [id, state] : candidates_) {
    if (desired.Contains(id)) continue;
    ExpireOldGains(&state);
    const IndexDescriptor& desc = catalog_->index(id);
    const double mat_cost = optimizer_->cost_model().MaterializationCost(
        catalog_->table(desc.column.table), desc);
    if (WindowGain(state) <= mat_cost) continue;
    // Evict least-recently-useful indexes until it fits.
    int64_t used = 0;
    for (IndexId m : desired.ids()) used += catalog_->index(m).size_bytes;
    while (used + desc.size_bytes > options_.storage_budget_bytes &&
           !desired.empty()) {
      IndexId coldest = kInvalidIndexId;
      int64_t coldest_seen = INT64_MAX;
      for (IndexId m : desired.ids()) {
        const int64_t seen = candidates_[m].last_useful_query;
        if (seen < coldest_seen) {
          coldest_seen = seen;
          coldest = m;
        }
      }
      if (coldest == kInvalidIndexId) break;
      used -= catalog_->index(coldest).size_bytes;
      desired.Remove(coldest);
    }
    if (used + desc.size_bytes <= options_.storage_budget_bytes) {
      desired.Add(id);
    }
  }
  // Also drop indexes with no useful gain inside the window at all.
  for (IndexId m : materialized.ids()) {
    auto it = candidates_.find(m);
    if (it != candidates_.end() &&
        query_number_ - it->second.last_useful_query >
            options_.gain_window_queries) {
      desired.Remove(m);
    }
  }

  if (!(desired == materialized)) {
    Result<std::vector<IndexAction>> actions =
        scheduler_.ApplyConfiguration(desired);
    if (actions.ok()) {
      for (auto& action : *actions) {
        step.build_seconds += action.build_seconds;
        step.actions.push_back(action);
      }
    } else {
      // Keep serving queries under the previous configuration rather than
      // aborting the tuner on a substrate error.
      COLT_LOG(Error) << "ApplyConfiguration failed: "
                      << actions.status().ToString()
                      << "; keeping previous configuration";
    }
  }
  return step;
}

}  // namespace colt
