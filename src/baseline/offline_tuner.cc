#include "baseline/offline_tuner.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace colt {

Result<std::vector<IndexId>> OfflineTuner::MineRelevantIndexes(
    const std::vector<Query>& workload) {
  std::vector<ColumnRef> columns;
  for (const auto& q : workload) {
    for (const auto& s : q.selections()) columns.push_back(s.column);
    if (include_join_columns_) {
      for (const auto& j : q.joins()) {
        columns.push_back(j.left);
        columns.push_back(j.right);
      }
    }
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  std::vector<IndexId> out;
  for (const ColumnRef& col : columns) {
    COLT_ASSIGN_OR_RETURN(IndexDescriptor desc, catalog_->IndexOn(col));
    out.push_back(desc.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<OfflineResult> OfflineTuner::Tune(const std::vector<Query>& workload,
                                         int64_t budget_bytes) {
  OfflineResult result;
  COLT_ASSIGN_OR_RETURN(result.relevant_indexes,
                        MineRelevantIndexes(workload));
  const std::vector<IndexId>& relevant = result.relevant_indexes;
  const size_t n = relevant.size();

  // Base cost (empty configuration).
  IndexConfiguration empty;
  for (const auto& q : workload) {
    result.base_cost += optimizer_->Optimize(q, empty).cost;
  }
  if (n == 0) {
    result.total_cost = result.base_cost;
    result.configurations_evaluated = 1;
    return result;
  }

  std::vector<int64_t> sizes(n);
  for (size_t i = 0; i < n; ++i) {
    sizes[i] = catalog_->index(relevant[i]).size_bytes;
  }
  auto config_for_mask = [&](uint64_t mask) {
    IndexConfiguration config;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) config.Add(relevant[i]);
    }
    return config;
  };
  auto size_of_mask = [&](uint64_t mask) {
    int64_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) total += sizes[i];
    }
    return total;
  };

  if (static_cast<int>(n) > max_exhaustive_indexes_) {
    // Greedy forward selection fallback (non-exhaustive, flagged).
    result.exhaustive = false;
    IndexConfiguration config;
    int64_t used = 0;
    double best_cost = result.base_cost;
    bool improved = true;
    while (improved) {
      improved = false;
      IndexId best_id = kInvalidIndexId;
      double best_candidate_cost = best_cost;
      for (size_t i = 0; i < n; ++i) {
        if (config.Contains(relevant[i])) continue;
        if (used + sizes[i] > budget_bytes) continue;
        const IndexConfiguration candidate = config.With(relevant[i]);
        double cost = 0.0;
        for (const auto& q : workload) {
          cost += optimizer_->Optimize(q, candidate).cost;
        }
        ++result.configurations_evaluated;
        if (cost < best_candidate_cost) {
          best_candidate_cost = cost;
          best_id = relevant[i];
        }
      }
      if (best_id != kInvalidIndexId) {
        config.Add(best_id);
        used += catalog_->index(best_id).size_bytes;
        best_cost = best_candidate_cost;
        improved = true;
      }
    }
    result.configuration = config;
    result.total_cost = best_cost;
    return result;
  }

  // ---- Exhaustive sweep with per-query memoization. ----
  // A query's cost depends only on config ∩ relevant(q). Group queries by
  // their relevant mask; memoize each group's total cost per submask.
  struct Group {
    uint64_t relevant_mask = 0;
    std::vector<const Query*> queries;
    std::unordered_map<uint64_t, double> cost_by_submask;
  };
  std::unordered_map<uint64_t, Group> groups;
  auto index_pos = [&](IndexId id) -> int {
    const auto it = std::lower_bound(relevant.begin(), relevant.end(), id);
    return (it != relevant.end() && *it == id)
               ? static_cast<int>(it - relevant.begin())
               : -1;
  };
  IndexConfiguration all_config = config_for_mask((n == 64)
                                                      ? ~0ull
                                                      : (1ull << n) - 1);
  for (const auto& q : workload) {
    uint64_t mask = 0;
    for (IndexId id : optimizer_->RelevantIndexes(q, all_config)) {
      const int pos = index_pos(id);
      if (pos >= 0) mask |= 1ull << pos;
    }
    groups[mask].relevant_mask = mask;
    groups[mask].queries.push_back(&q);
  }
  auto group_cost = [&](Group& g, uint64_t config_mask) {
    const uint64_t submask = config_mask & g.relevant_mask;
    auto it = g.cost_by_submask.find(submask);
    if (it != g.cost_by_submask.end()) return it->second;
    const IndexConfiguration config = config_for_mask(submask);
    double total = 0.0;
    for (const Query* q : g.queries) {
      total += optimizer_->Optimize(*q, config).cost;
    }
    g.cost_by_submask.emplace(submask, total);
    return total;
  };

  const uint64_t full = (n == 64) ? ~0ull : (1ull << n) - 1;
  double best_cost = result.base_cost;
  uint64_t best_mask = 0;
  for (uint64_t mask = 0; mask <= full; ++mask) {
    if (size_of_mask(mask) > budget_bytes) continue;
    double total = 0.0;
    for (auto& entry : groups) {
      total += group_cost(entry.second, mask);
      if (total >= best_cost) break;  // early bail
    }
    ++result.configurations_evaluated;
    if (total < best_cost) {
      best_cost = total;
      best_mask = mask;
    }
  }
  result.configuration = config_for_mask(best_mask);
  result.total_cost = best_cost;
  return result;
}

}  // namespace colt
