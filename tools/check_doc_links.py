#!/usr/bin/env python3
"""Checks that relative markdown links in the repo's documentation resolve.

Scans the root-level *.md files plus docs/*.md for inline links
[text](target) and fails (exit 1) if a relative target does not exist on
disk, resolved against the linking file's directory. External links
(http/https/mailto) and pure in-page anchors (#...) are skipped; a
#fragment on a relative link is stripped before the existence check.

Stdlib only; run from anywhere:  python3 tools/check_doc_links.py
"""

import os
import re
import sys

# Inline markdown links. Deliberately simple: no nested parens in targets,
# which the repo's docs never use. Images (![alt](src)) match too, which is
# what we want — a missing image is just as broken as a missing page.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def doc_files(root: str) -> list:
    files = []
    for name in sorted(os.listdir(root)):
        if name.endswith(".md"):
            files.append(os.path.join(root, name))
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def check_file(path: str) -> list:
    """Returns a list of 'file:line: broken link' strings."""
    errors = []
    with open(path, encoding="utf-8") as f:
        in_code_block = False
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_code_block = not in_code_block
                continue
            if in_code_block:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if target.startswith("#"):
                    continue  # in-page anchor; headings are not checked
                target = target.split("#", 1)[0]
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
                if not os.path.exists(resolved):
                    errors.append("%s:%d: broken link -> %s"
                                  % (os.path.relpath(path, repo_root()),
                                     lineno, match.group(1)))
    return errors


def main() -> int:
    root = repo_root()
    files = doc_files(root)
    if not files:
        print("check_doc_links: no markdown files found under %s" % root)
        return 1
    errors = []
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error)
    print("check_doc_links: %d files, %d broken links"
          % (len(files), len(errors)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
