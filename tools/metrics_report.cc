// Pretty-prints a metrics snapshot dump, or the diff between two dumps.
//
//   metrics_report <snapshot.jsonl>              render one snapshot
//   metrics_report <before.jsonl> <after.jsonl>  render after - before
//   metrics_report --diff-dir <dir>              per-epoch time series
//
// Dumps are the JSONL format written by colt::MetricsSnapshot::ToJsonl()
// (as exported by bench/fig5_overhead and the harness). --diff-dir reads
// an observability export directory (DESIGN.md §13) and renders the
// epoch_NNNN.jsonl snapshots as a table: one row per counter, one column
// per epoch, each cell the delta against the previous epoch (the first
// column is absolute). Any malformed snapshot makes the exit code
// nonzero.

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool LoadSnapshot(const char* path, colt::MetricsSnapshot* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "metrics_report: cannot read %s\n", path);
    return false;
  }
  auto parsed = colt::MetricsSnapshot::FromJsonl(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "metrics_report: %s: %s\n", path,
                 parsed.status().message().c_str());
    return false;
  }
  *out = std::move(parsed).value();
  return true;
}

// Lexicographically sorted epoch_*.jsonl names in `dir` (epoch_%04d
// zero-padding makes that epoch order).
bool ListEpochSnapshots(const char* dir, std::vector<std::string>* out) {
  DIR* d = ::opendir(dir);
  if (d == nullptr) {
    std::fprintf(stderr, "metrics_report: cannot open directory %s\n", dir);
    return false;
  }
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("epoch_", 0) == 0 &&
        name.size() > 6 + 6 &&
        name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      out->push_back(name);
    }
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return true;
}

int DiffDir(const char* dir) {
  std::vector<std::string> names;
  if (!ListEpochSnapshots(dir, &names)) return 1;
  if (names.empty()) {
    std::fprintf(stderr, "metrics_report: no epoch_*.jsonl in %s\n", dir);
    return 1;
  }
  std::vector<colt::MetricsSnapshot> snaps(names.size());
  std::set<std::string> counter_names;
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string path = std::string(dir) + "/" + names[i];
    if (!LoadSnapshot(path.c_str(), &snaps[i])) return 1;
    for (const auto& entry : snaps[i].counters) {
      counter_names.insert(entry.first);
    }
  }

  // Header: the epoch number embedded in each file name.
  std::printf("%-44s", "counter (delta per epoch)");
  for (const std::string& name : names) {
    std::printf(" %10s", name.substr(6, name.size() - 6 - 6).c_str());
  }
  std::printf("\n");
  auto counter_at = [&](size_t i, const std::string& name) {
    const auto it = snaps[i].counters.find(name);
    return it == snaps[i].counters.end() ? int64_t{0} : it->second;
  };
  for (const std::string& counter : counter_names) {
    std::printf("%-44s", counter.c_str());
    for (size_t i = 0; i < snaps.size(); ++i) {
      const int64_t prev = i == 0 ? 0 : counter_at(i - 1, counter);
      std::printf(" %10lld",
                  static_cast<long long>(counter_at(i, counter) - prev));
    }
    std::printf("\n");
  }

  // Gauges are levels, not totals: show the final epoch's values.
  if (!snaps.back().gauges.empty()) {
    std::printf("\ngauge (final epoch)\n");
    for (const auto& [name, value] : snaps.back().gauges) {
      std::printf("%-44s %14.4f\n", name.c_str(), value);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--diff-dir") == 0) {
    return DiffDir(argv[2]);
  }
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr,
                 "usage: metrics_report <snapshot.jsonl> [after.jsonl] | "
                 "metrics_report --diff-dir <dir>\n");
    return 2;
  }
  colt::MetricsSnapshot first;
  if (!LoadSnapshot(argv[1], &first)) return 1;
  if (argc == 2) {
    std::fputs(colt::FormatSnapshot(first).c_str(), stdout);
    return 0;
  }
  colt::MetricsSnapshot second;
  if (!LoadSnapshot(argv[2], &second)) return 1;
  std::fputs(colt::FormatSnapshotDiff(first, second).c_str(), stdout);
  return 0;
}
