// Pretty-prints a metrics snapshot dump, or the diff between two dumps.
//
//   metrics_report <snapshot.jsonl>            render one snapshot
//   metrics_report <before.jsonl> <after.jsonl>  render after - before
//
// Dumps are the JSONL format written by colt::MetricsSnapshot::ToJsonl()
// (as exported by bench/fig5_overhead and the harness).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/metrics.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool LoadSnapshot(const char* path, colt::MetricsSnapshot* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "metrics_report: cannot read %s\n", path);
    return false;
  }
  auto parsed = colt::MetricsSnapshot::FromJsonl(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "metrics_report: %s: %s\n", path,
                 parsed.status().message().c_str());
    return false;
  }
  *out = std::move(parsed).value();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr,
                 "usage: metrics_report <snapshot.jsonl> [after.jsonl]\n");
    return 2;
  }
  colt::MetricsSnapshot first;
  if (!LoadSnapshot(argv[1], &first)) return 1;
  if (argc == 2) {
    std::fputs(colt::FormatSnapshot(first).c_str(), stdout);
    return 0;
  }
  colt::MetricsSnapshot second;
  if (!LoadSnapshot(argv[2], &second)) return 1;
  std::fputs(colt::FormatSnapshotDiff(first, second).c_str(), stdout);
  return 0;
}
