// Answers "why does index I exist / not exist at epoch E" from a
// decision-provenance export (DESIGN.md §13).
//
//   colt_explain <dir|provenance.jsonl>               list indexes seen
//   colt_explain <dir|...> --index=I [--epoch=E]      timeline + verdict
//
// The input is an observability export directory written by the fig
// benches' --obs-dir flag (its provenance.jsonl is read) or a bare
// provenance JSONL file. With --index, prints that index's decision
// timeline and the replayed state as of the end of --epoch (default:
// the last epoch in the stream). Exits nonzero on unreadable or
// malformed input and on an index with no recorded events.

#include <sys/stat.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/provenance.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// A directory argument means "its provenance.jsonl".
std::string ResolveInput(const std::string& arg) {
  struct stat st;
  if (::stat(arg.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return arg + "/provenance.jsonl";
  }
  return arg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  int64_t index = -1;
  int64_t epoch = -1;
  bool have_index = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--index=", 8) == 0) {
      index = std::atoll(argv[i] + 8);
      have_index = true;
    } else if (std::strncmp(argv[i], "--epoch=", 8) == 0) {
      epoch = std::atoll(argv[i] + 8);
    } else if (input.empty()) {
      input = argv[i];
    } else {
      std::fprintf(stderr, "colt_explain: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: colt_explain <dir|provenance.jsonl> "
                 "[--index=I] [--epoch=E]\n");
    return 2;
  }

  const std::string path = ResolveInput(input);
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "colt_explain: cannot read %s\n", path.c_str());
    return 1;
  }
  auto parsed = colt::ProvenanceFromJsonl(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "colt_explain: %s: %s\n", path.c_str(),
                 parsed.status().message().c_str());
    return 1;
  }
  const std::vector<colt::ProvenanceEvent>& events = parsed.value();
  int64_t last_epoch = 0;
  for (const auto& e : events) last_epoch = std::max(last_epoch, e.epoch);

  if (!have_index) {
    // Index census: which indexes the stream talks about, and where each
    // ended up — the menu for a follow-up --index query.
    std::map<int64_t, int64_t> events_per_index;
    for (const auto& e : events) {
      if (e.index >= 0) ++events_per_index[e.index];
    }
    std::printf("%zu events, %zu epochs (0..%" PRId64 "), %zu indexes\n",
                events.size(), static_cast<size_t>(last_epoch + 1),
                last_epoch, events_per_index.size());
    std::printf("%8s %8s %14s %-24s %s\n", "index", "events", "state",
                "last action", "cause");
    for (const auto& [id, count] : events_per_index) {
      const colt::IndexEpochState state =
          colt::ExplainIndexAtEpoch(events, id, last_epoch);
      std::printf("%8" PRId64 " %8" PRId64 " %14s %-24s %s\n", id, count,
                  state.materialized ? "materialized" : "absent",
                  state.last_action.empty() ? "-" : state.last_action.c_str(),
                  state.last_cause.empty() ? "-" : state.last_cause.c_str());
    }
    return 0;
  }

  const std::vector<colt::ProvenanceEvent> timeline =
      colt::BuildIndexTimeline(events, index);
  if (timeline.empty()) {
    std::fprintf(stderr,
                 "colt_explain: no events for index %" PRId64 " in %s\n",
                 index, path.c_str());
    return 1;
  }
  if (epoch < 0) epoch = last_epoch;

  std::printf("index %" PRId64 ": %zu events\n", index, timeline.size());
  std::fputs(colt::FormatIndexTimeline(timeline).c_str(), stdout);

  const colt::IndexEpochState state =
      colt::ExplainIndexAtEpoch(events, index, epoch);
  std::printf("\nas of end of epoch %" PRId64 ": index %" PRId64 " is %s%s\n",
              epoch, index, state.materialized ? "MATERIALIZED" : "ABSENT",
              state.hot ? " (hot)" : "");
  if (state.last_action.empty()) {
    std::printf("  no install/drop decision recorded up to this epoch\n");
  } else {
    std::printf("  because of %s (decision #%" PRId64 ", epoch %" PRId64
                "%s%s, net benefit %.6f at decision time)\n",
                state.last_action.c_str(), state.last_action_id,
                state.last_action_epoch,
                state.last_cause.empty() ? "" : ", cause ",
                state.last_cause.c_str(), state.last_net_benefit);
  }
  return 0;
}
