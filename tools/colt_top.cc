// Terminal live view of a tuner's observability export (DESIGN.md §13):
// a `top`-style screen summarizing the decision-provenance stream and the
// latest per-epoch metrics snapshot of a directory written by the fig
// benches' --obs-dir flag (or by any harness using WriteObservabilityDir).
//
//   colt_top <dir>            refresh every second until interrupted
//   colt_top <dir> --once     render one frame and exit (CI mode)
//
// Each frame shows: event totals by name, the tail of the decision
// stream, and the top counters of the newest epoch_NNNN.jsonl snapshot.
// The directory is re-read every frame, so a concurrently running bench
// can be watched live. Exits nonzero when the directory or its
// provenance.jsonl is unreadable or malformed.

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/provenance.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Newest epoch snapshot name in `dir`, empty when none exist.
std::string NewestEpochSnapshot(const std::string& dir) {
  std::string newest;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return newest;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("epoch_", 0) == 0 &&
        name.size() > 6 + 6 &&
        name.compare(name.size() - 6, 6, ".jsonl") == 0 && name > newest) {
      newest = name;
    }
  }
  ::closedir(d);
  return newest;
}

// One frame. Returns false (with a message on stderr) on bad input.
bool RenderFrame(const std::string& dir) {
  std::string text;
  if (!ReadFile(dir + "/provenance.jsonl", &text)) {
    std::fprintf(stderr, "colt_top: cannot read %s/provenance.jsonl\n",
                 dir.c_str());
    return false;
  }
  auto parsed = colt::ProvenanceFromJsonl(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "colt_top: %s\n",
                 parsed.status().message().c_str());
    return false;
  }
  const std::vector<colt::ProvenanceEvent>& events = parsed.value();

  int64_t last_epoch = 0;
  std::vector<std::pair<std::string, int64_t>> by_name;
  for (const auto& e : events) {
    last_epoch = std::max(last_epoch, e.epoch);
    bool found = false;
    for (auto& [name, count] : by_name) {
      if (name == e.name) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) by_name.emplace_back(e.name, 1);
  }
  std::sort(by_name.begin(), by_name.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::printf("colt_top — %s\n", dir.c_str());
  std::printf("%zu decisions over %" PRId64 " epochs\n\n", events.size(),
              last_epoch + 1);
  std::printf("events by name:\n");
  for (const auto& [name, count] : by_name) {
    std::printf("  %-36s %8" PRId64 "\n", name.c_str(), count);
  }

  const size_t tail = std::min<size_t>(events.size(), 10);
  std::printf("\nlast %zu decisions:\n", tail);
  for (size_t i = events.size() - tail; i < events.size(); ++i) {
    std::printf("  %s\n", colt::FormatProvenanceEvent(events[i]).c_str());
  }

  const std::string newest = NewestEpochSnapshot(dir);
  if (!newest.empty()) {
    std::string snap_text;
    if (ReadFile(dir + "/" + newest, &snap_text)) {
      const auto snap = colt::MetricsSnapshot::FromJsonl(snap_text);
      if (snap.ok()) {
        std::printf("\ncounters as of %s:\n", newest.c_str());
        for (const auto& [name, value] : snap.value().counters) {
          std::printf("  %-36s %8lld\n", name.c_str(),
                      static_cast<long long>(value));
        }
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (dir.empty()) {
      dir = argv[i];
    } else {
      std::fprintf(stderr, "colt_top: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "usage: colt_top <export-dir> [--once]\n");
    return 2;
  }
  if (once) return RenderFrame(dir) ? 0 : 1;
  while (true) {
    // ANSI home + clear-below keeps the frame stable like top(1).
    std::printf("\x1b[H\x1b[J");
    if (!RenderFrame(dir)) return 1;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}
