#!/usr/bin/env python3
"""Validates a decision-provenance JSONL export (DESIGN.md §13).

Usage: check_provenance.py <provenance.jsonl | export-dir>

Checks, per line:
  * the line parses as a JSON object;
  * the required keys id/ep/q/name are present with the right types;
  * decision ids are strictly increasing in stream order;
  * event names are dotted snake_case (at least two dot-separated
    [a-z0-9_]+ segments, the same rule colt_lint enforces at the
    emission sites);
  * epochs are non-decreasing (the stream is in decision order);
  * optional index/cluster fields are integers and attrs is an object.

Exits 0 with a one-line summary on success, 1 with the offending line
number and reason on the first violation. Stdlib only.
"""

import json
import os
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


def fail(lineno, reason):
    print(f"check_provenance: line {lineno}: {reason}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) != 2:
        print("usage: check_provenance.py <provenance.jsonl | export-dir>",
              file=sys.stderr)
        return 2
    path = argv[1]
    if os.path.isdir(path):
        path = os.path.join(path, "provenance.jsonl")
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_provenance: {e}", file=sys.stderr)
        return 1

    last_id = None
    last_epoch = None
    names = set()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            return fail(lineno, "blank line in JSONL stream")
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(lineno, f"invalid JSON: {e}")
        if not isinstance(event, dict):
            return fail(lineno, "line is not a JSON object")
        for key, typ in (("id", int), ("ep", int), ("q", int), ("name", str)):
            if key not in event:
                return fail(lineno, f"missing required key {key!r}")
            if not isinstance(event[key], typ) or isinstance(event[key], bool):
                return fail(lineno, f"key {key!r} is not {typ.__name__}")
        if last_id is not None and event["id"] <= last_id:
            return fail(lineno,
                        f"decision id {event['id']} not above {last_id}")
        last_id = event["id"]
        if not NAME_RE.match(event["name"]):
            return fail(lineno,
                        f"event name {event['name']!r} is not dotted "
                        "snake_case")
        names.add(event["name"])
        if last_epoch is not None and event["ep"] < last_epoch:
            return fail(lineno,
                        f"epoch {event['ep']} regresses below {last_epoch}")
        last_epoch = event["ep"]
        for key in ("index", "cluster"):
            if key in event and (not isinstance(event[key], int)
                                 or isinstance(event[key], bool)):
                return fail(lineno, f"key {key!r} is not int")
        if "attrs" in event and not isinstance(event["attrs"], dict):
            return fail(lineno, "attrs is not an object")

    print(f"check_provenance: OK — {len(lines)} events, "
          f"{len(names)} distinct names")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
