# Gnuplot script for the CSVs produced with COLT_CSV_DIR (see EXPERIMENTS.md):
#   COLT_CSV_DIR=out ./build/bench/fig3_stable
#   COLT_CSV_DIR=out ./build/bench/fig5_overhead
#   gnuplot -e "dir='out'" tools/plot_figures.gp
if (!exists("dir")) dir = "."
set datafile separator ","
set terminal pngcairo size 900,500
set key top right

set output dir."/fig3_per_query.png"
set title "Fig. 3 — per-query time (stable workload)"
set xlabel "query"
set ylabel "seconds"
plot dir."/fig3_per_query.csv" using 1:5 skip 1 with lines title "COLT", \
     dir."/fig3_per_query.csv" using 1:6 skip 1 with lines title "OFFLINE"

set output dir."/fig5_whatif.png"
set title "Fig. 5 — what-if calls per epoch (self-regulated overhead)"
set xlabel "epoch"
set ylabel "what-if calls"
plot dir."/fig5_epochs.csv" using 1:2 skip 1 with boxes title "used", \
     dir."/fig5_epochs.csv" using 1:3 skip 1 with lines title "limit"
