#ifndef COLT_TOOLS_COLT_LINT_LINT_H_
#define COLT_TOOLS_COLT_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

/// colt_lint: dependency-free static analysis for project invariants the
/// compiler never sees (see DESIGN.md §9). Token/regex based on a stripped
/// view of each file (comments and literal contents blanked), so banned
/// tokens inside strings or comments never fire.
///
/// Deliberately NOT a real C++ front end: every rule is a structural
/// pattern that survives formatting churn, and every rule has an escape
/// hatch — a comment of the form "colt-lint" + ": allow(<rule>):
/// <justification>" (file-wide) or "colt-lint" + ": allow-next-line(<rule>):
/// <justification>" (silences the first code line after the comment block)
/// — so a false positive costs one documented comment, not a redesign of
/// the tool. Prefer the line-scoped form: it cannot hide an unrelated
/// violation added later in the same file.
namespace colt_lint {

/// One finding. Formats as "file:line: rule: message".
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  std::string ToString() const;
};

/// Rule identifiers, as they appear in output and allow() suppressions.
/// - layering:        #include must follow the module DAG (no upward or
///                    sideways edges between src/ modules).
/// - status-discard:  no bare `(void)` casts; intentional Status/Result
///                    drops go through ColtIgnoreStatus().
/// - determinism:     no rand()/srand()/std::random_device, no
///                    time(nullptr) seeding, no std::chrono::system_clock
///                    outside src/common/rng.h and the logging layer.
/// - raw-new-delete:  no raw new/delete outside the B+-tree node store.
/// - naked-thread:    no std::thread/std::jthread/std::async/
///                    pthread_create outside src/common/thread_pool;
///                    parallel work goes through colt::ThreadPool so the
///                    serial-equivalence contract (DESIGN.md §10) holds.
/// - iostream:        no <iostream> in src/ (logging/metrics/tracing
///                    excepted); harness and CLIs print via <ostream>.
/// - metric-name:     GetCounter/GetGauge/GetHistogram names are dotted
///                    snake_case literals; StartSpan names snake_case.
/// - thread-role:     cross-file call-graph pass over the COLT_OWNER_ONLY /
///                    COLT_WORKER_SAFE / COLT_THREAD_NEUTRAL annotations
///                    (src/common/thread_annotations.h): worker-safe and
///                    thread-neutral functions must not call owner-only
///                    APIs, pool-submitted lambdas may only call annotated
///                    worker-safe/neutral project functions, and one
///                    function may not carry two different roles.
/// - worker-purity:   inside worker-safe/neutral bodies and pool lambdas:
///                    no provenance emission (RecordEvent), no
///                    MetricsRegistry::Default(), no randomness outside
///                    ThreadPool::TaskRng, no const_cast, no mutable
///                    static locals, and no member writes from
///                    const-qualified (Peek-style) read paths.
/// - whitespace:      no tabs, trailing whitespace, CR line endings, or
///                    missing final newline.
/// - bad-suppression: malformed or unjustified allow() /
///                    allow-next-line() comment.
const std::vector<std::string>& AllRules();

/// True if `rule` is a known rule id (excluding bad-suppression, which
/// cannot be suppressed).
bool IsKnownRule(std::string_view rule);

/// One in-memory file for LintFiles. `path` is the repo-relative path
/// (forward slashes); it decides which rules and exceptions apply.
struct FileContent {
  std::string path;
  std::string content;
};

/// Lints a corpus of files together: every per-file rule on each file,
/// plus the cross-file thread-role analysis over the whole corpus (the
/// analyzer's symbol table and call graph span all of `files`, so roles
/// declared in one file bind definitions and call sites in another).
/// Violations are sorted by (file, line, rule).
std::vector<Violation> LintFiles(const std::vector<FileContent>& files);

/// Lints one file's contents: LintFiles with a single-file corpus.
std::vector<Violation> LintFileContent(const std::string& path,
                                       const std::string& content);

/// Walks `root` (a repository checkout) and lints every .h/.cc/.cpp file
/// under src/, bench/, tests/, and tools/, skipping tests/lint_fixtures/
/// and build directories. Violations are sorted by (file, line).
std::vector<Violation> LintTree(const std::string& root);

}  // namespace colt_lint

#endif  // COLT_TOOLS_COLT_LINT_LINT_H_
