# Runs clang-tidy over every translation unit listed in the build's
# compile_commands.json, using the repo's .clang-tidy. Invoked by the `lint`
# target; fails (FATAL_ERROR) on any diagnostic so CI gates on it.
#
# Variables: CLANG_TIDY, SOURCE_DIR, BUILD_DIR.
if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
  message(FATAL_ERROR
      "lint: ${BUILD_DIR}/compile_commands.json not found; configure with "
      "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
endif()

file(GLOB_RECURSE TIDY_SOURCES
     "${SOURCE_DIR}/src/*.cc"
     "${SOURCE_DIR}/tools/*.cc")
list(FILTER TIDY_SOURCES EXCLUDE REGEX "lint_fixtures")

set(FAILED 0)
foreach(source IN LISTS TIDY_SOURCES)
  execute_process(
      COMMAND "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet
              --warnings-as-errors=* "${source}"
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(STATUS "clang-tidy: ${source}\n${out}")
    set(FAILED 1)
  endif()
endforeach()
if(FAILED)
  message(FATAL_ERROR "lint: clang-tidy reported diagnostics")
endif()
message(STATUS "lint: clang-tidy clean")
