# Dry-run clang-format over the tree and fail if any file would be
# rewritten. Invoked by the `lint` target and the CI format-check step.
#
# Variables: CLANG_FORMAT, SOURCE_DIR.
file(GLOB_RECURSE FORMAT_SOURCES
     "${SOURCE_DIR}/src/*.cc" "${SOURCE_DIR}/src/*.h"
     "${SOURCE_DIR}/bench/*.cc"
     "${SOURCE_DIR}/tests/*.cc" "${SOURCE_DIR}/tests/*.h"
     "${SOURCE_DIR}/tools/*.cc" "${SOURCE_DIR}/tools/*.h"
     "${SOURCE_DIR}/examples/*.cpp")
list(FILTER FORMAT_SOURCES EXCLUDE REGEX "lint_fixtures")

set(FAILED 0)
foreach(source IN LISTS FORMAT_SOURCES)
  execute_process(
      COMMAND "${CLANG_FORMAT}" --dry-run --Werror "${source}"
      RESULT_VARIABLE rc
      OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(STATUS "needs formatting: ${source}")
    set(FAILED 1)
  endif()
endforeach()
if(FAILED)
  message(FATAL_ERROR
      "lint: run clang-format -i on the files above (style: .clang-format)")
endif()
message(STATUS "lint: clang-format clean")
