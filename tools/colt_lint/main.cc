/// colt_lint CLI: walks a repository checkout and enforces the project
/// invariants described in DESIGN.md §9. Exit code 0 means clean; 1 means
/// at least one violation (printed as "file:line: rule: message"); 2 means
/// usage error.
///
/// Usage:
///   colt_lint [--root <dir>]     lint src/ bench/ tests/ tools/ under <dir>
///   colt_lint --as <path> <file> lint one file as if it lived at the
///                                repo-relative <path> (used to drive the
///                                tests/lint_fixtures corpus by hand)
///   colt_lint --list-rules       print the rule catalog and exit
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string as_path;
  std::string as_file;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& rule : colt_lint::AllRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--as") == 0 && i + 2 < argc) {
      as_path = argv[++i];
      as_file = argv[++i];
      continue;
    }
    std::fprintf(stderr,
                 "usage: colt_lint [--root <dir>] [--as <path> <file>] "
                 "[--list-rules]\n");
    return 2;
  }

  std::vector<colt_lint::Violation> violations;
  if (!as_file.empty()) {
    std::ifstream in(as_file, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "colt_lint: cannot read %s\n", as_file.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    violations = colt_lint::LintFileContent(as_path, buffer.str());
  } else {
    violations = colt_lint::LintTree(root);
  }
  for (const colt_lint::Violation& v : violations) {
    std::fprintf(stderr, "%s\n", v.ToString().c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "colt_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  return 0;
}
