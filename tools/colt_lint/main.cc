/// colt_lint CLI: walks a repository checkout and enforces the project
/// invariants described in DESIGN.md §9 and §14. Exit code 0 means clean;
/// 1 means at least one violation (printed as "file:line: rule: message",
/// or as a JSON array under --json); 2 means usage error.
///
/// Usage:
///   colt_lint [--root <dir>]     lint src/ bench/ tests/ tools/ under <dir>
///   colt_lint --as <path> <file> lint one file as if it lived at the
///                                repo-relative <path> (used to drive the
///                                tests/lint_fixtures corpus by hand)
///   colt_lint --json             emit violations as a JSON array on stdout
///                                (one {file,line,rule,message} object per
///                                violation; machine-readable, consumed by
///                                the CI problem matcher)
///   colt_lint --list-rules       print the rule catalog and exit
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "lint.h"

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars);
/// lint messages are ASCII by construction.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<colt_lint::Violation>& violations) {
  std::printf("[");
  for (size_t i = 0; i < violations.size(); ++i) {
    const colt_lint::Violation& v = violations[i];
    std::printf("%s\n  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
                "\"message\": \"%s\"}",
                i == 0 ? "" : ",", JsonEscape(v.file).c_str(), v.line,
                JsonEscape(v.rule).c_str(), JsonEscape(v.message).c_str());
  }
  std::printf("%s]\n", violations.empty() ? "" : "\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string as_path;
  std::string as_file;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& rule : colt_lint::AllRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--as") == 0 && i + 2 < argc) {
      as_path = argv[++i];
      as_file = argv[++i];
      continue;
    }
    std::fprintf(stderr,
                 "usage: colt_lint [--root <dir>] [--as <path> <file>] "
                 "[--json] [--list-rules]\n");
    return 2;
  }

  std::vector<colt_lint::Violation> violations;
  if (!as_file.empty()) {
    std::ifstream in(as_file, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "colt_lint: cannot read %s\n", as_file.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    violations = colt_lint::LintFileContent(as_path, buffer.str());
  } else {
    violations = colt_lint::LintTree(root);
  }
  if (json) {
    PrintJson(violations);
  } else {
    for (const colt_lint::Violation& v : violations) {
      std::fprintf(stderr, "%s\n", v.ToString().c_str());
    }
  }
  if (!violations.empty()) {
    if (!json) {
      std::fprintf(stderr, "colt_lint: %zu violation(s)\n",
                   violations.size());
    }
    return 1;
  }
  return 0;
}
