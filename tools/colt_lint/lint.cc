#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "internal.h"

namespace colt_lint {

// ---------------------------------------------------------------------------
// Shared plumbing (colt_lint::internal): the lexer and the suppression
// parser, used by both the per-file rules below and the cross-file
// thread-role analyzer (thread_roles.cc).
// ---------------------------------------------------------------------------

namespace internal {

int LineOfOffset(const std::string& s, size_t offset) {
  return 1 + static_cast<int>(std::count(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(offset), '\n'));
}

LexedFile Lex(const std::string& src) {
  LexedFile out;
  out.stripped = src;
  std::string& st = out.stripped;

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;        // for R"delim( ... )delim"
  size_t comment_start = 0;     // offset of the current comment's text
  char prev_code_char = '\n';   // last non-space char seen in code state

  auto blank = [&](size_t i) {
    if (st[i] != '\n') st[i] = ' ';
  };

  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_start = i;
          blank(i);
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_start = i;
          blank(i);
        } else if (c == 'R' && next == '"' &&
                   !(std::isalnum(static_cast<unsigned char>(prev_code_char)) ||
                     prev_code_char == '_')) {
          // Raw string literal R"delim( ... )delim".
          size_t j = i + 2;
          raw_delim.clear();
          while (j < src.size() && src[j] != '(') raw_delim += src[j++];
          state = State::kRawString;
          for (size_t k = i + 1; k <= j && k < src.size(); ++k) blank(k);
          i = j;  // consumed through '('
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' &&
                   !(std::isalnum(static_cast<unsigned char>(prev_code_char)) ||
                     prev_code_char == '_')) {
          // A quote after an identifier/number char is a digit separator
          // (1'000) or literal suffix, not a char literal.
          state = State::kChar;
        }
        if (!std::isspace(static_cast<unsigned char>(c))) prev_code_char = c;
        break;
      case State::kLineComment:
        if (c == '\n') {
          out.comments.push_back(
              {LineOfOffset(src, comment_start),
               src.substr(comment_start, i - comment_start)});
          state = State::kCode;
          prev_code_char = '\n';
        } else {
          blank(i);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out.comments.push_back(
              {LineOfOffset(src, comment_start),
               src.substr(comment_start, i + 2 - comment_start)});
          blank(i);
          blank(i + 1);
          ++i;
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          prev_code_char = '"';
        } else {
          blank(i);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          prev_code_char = '\'';
        } else {
          blank(i);
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (src.compare(i, close.size(), close) == 0) {
          for (size_t k = i; k < i + close.size(); ++k) blank(k);
          i += close.size() - 1;
          state = State::kCode;
          prev_code_char = '"';
        } else {
          blank(i);
        }
        break;
      }
    }
  }
  if (state == State::kLineComment) {
    out.comments.push_back({LineOfOffset(src, comment_start),
                            src.substr(comment_start)});
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

namespace {

// Splits a comma-separated rule list, validating ids; returns the known
// ones and appends bad-suppression findings for the rest.
std::set<std::string> ParseRuleList(const std::string& path, int line,
                                    const std::string& rules,
                                    const char* form,
                                    std::vector<Violation>* errors) {
  std::set<std::string> out;
  std::stringstream ss(rules);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    const size_t b = rule.find_first_not_of(" \t");
    const size_t e = rule.find_last_not_of(" \t");
    rule = b == std::string::npos ? "" : rule.substr(b, e - b + 1);
    if (!IsKnownRule(rule)) {
      errors->push_back({path, line, "bad-suppression",
                         "unknown rule '" + rule + "' in " + form + "()"});
    } else {
      out.insert(rule);
    }
  }
  return out;
}

// Last line of the comment block containing a directive comment that
// starts at `start_line`, where a "block" is the run of consecutive
// comment-only lines (no code, no blank line in between). Wrapped
// justifications therefore do not change which line the directive hits.
int CommentBlockEnd(const internal::LexedFile& lexed, int start_line) {
  // Lines with any code left after stripping: a trailing comment on a code
  // line is its own one-line block.
  std::set<int> code_lines;
  {
    int line = 1;
    bool has_code = false;
    for (const char c : lexed.stripped) {
      if (c == '\n') {
        if (has_code) code_lines.insert(line);
        ++line;
        has_code = false;
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        has_code = true;
      }
    }
    if (has_code) code_lines.insert(line);
  }
  // First line -> last line of each comment.
  std::map<int, int> comment_end;
  for (const auto& comment : lexed.comments) {
    const int newlines = static_cast<int>(
        std::count(comment.text.begin(), comment.text.end(), '\n'));
    auto [it, inserted] =
        comment_end.emplace(comment.line, comment.line + newlines);
    if (!inserted) it->second = std::max(it->second, comment.line + newlines);
  }
  int end = start_line;
  const auto self = comment_end.find(start_line);
  if (self != comment_end.end()) end = std::max(end, self->second);
  for (;;) {
    const auto next = comment_end.find(end + 1);
    if (next == comment_end.end() || code_lines.count(end + 1) > 0) break;
    end = std::max(end, next->second);
  }
  return end;
}

}  // namespace

Suppressions ParseSuppressions(const std::string& path,
                               const LexedFile& lexed) {
  Suppressions out;
  static const std::regex kAllow(
      R"(colt-lint:\s*allow\(([^)]*)\)\s*(:?)\s*(.*))");
  static const std::regex kAllowNextLine(
      R"(colt-lint:\s*allow-next-line\(([^)]*)\)\s*(:?)\s*(.*))");
  for (const auto& comment : lexed.comments) {
    std::smatch m;
    const bool next_line = std::regex_search(comment.text, m, kAllowNextLine);
    if (!next_line && !std::regex_search(comment.text, m, kAllow)) continue;
    const char* form = next_line ? "allow-next-line" : "allow";
    const std::string rules = m[1];
    const std::string colon = m[2];
    std::string justification = m[3];
    while (!justification.empty() && std::isspace(static_cast<unsigned char>(
                                         justification.back()))) {
      justification.pop_back();
    }
    if (colon.empty() || justification.empty()) {
      out.errors.push_back(
          {path, comment.line, "bad-suppression",
           std::string(form) + "() requires a justification: "
                               "// colt-lint: " +
               form + "(<rule>): <why this is safe>"});
      continue;
    }
    std::set<std::string> parsed =
        ParseRuleList(path, comment.line, rules, form, &out.errors);
    if (next_line) {
      const int target = CommentBlockEnd(lexed, comment.line) + 1;
      out.by_line[target].insert(parsed.begin(), parsed.end());
    } else {
      out.file_wide.insert(parsed.begin(), parsed.end());
    }
  }
  return out;
}

}  // namespace internal

namespace {

namespace fs = std::filesystem;

using internal::LexedFile;
using internal::Lex;
using internal::LineOfOffset;
using internal::StartsWith;
using internal::Suppressions;
using internal::ParseSuppressions;

// ---------------------------------------------------------------------------
// Module DAG. A file in src/<module>/ may include its own module plus the
// listed dependencies; anything else is an upward or sideways edge.
// Order: common -> catalog -> index -> {storage, query} -> optimizer ->
// exec -> core -> baseline -> harness  (see DESIGN.md §9).
// ---------------------------------------------------------------------------

const std::map<std::string, std::set<std::string>>& ModuleDag() {
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"common", {}},
      {"catalog", {"common"}},
      {"index", {"common"}},
      {"query", {"common", "catalog"}},
      {"storage", {"common", "catalog", "index"}},
      {"optimizer", {"common", "catalog", "query"}},
      {"exec",
       {"common", "catalog", "index", "query", "storage", "optimizer"}},
      {"core",
       {"common", "catalog", "index", "query", "storage", "optimizer",
        "exec"}},
      {"baseline",
       {"common", "catalog", "index", "query", "storage", "optimizer", "exec",
        "core"}},
      {"harness",
       {"common", "catalog", "index", "query", "storage", "optimizer", "exec",
        "core", "baseline"}},
  };
  return kDag;
}

// Repo-relative module of a src/ file, or "" if not under src/.
std::string ModuleOf(const std::string& path) {
  if (!StartsWith(path, "src/")) return "";
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

struct Include {
  int line;
  std::string path;  // as written between the quotes/brackets
  bool angled;
};

// Include directives, with paths read back from the original content (the
// stripped view blanks quoted-include paths along with every other string).
std::vector<Include> FindIncludes(const std::string& original,
                                  const std::string& stripped) {
  std::vector<Include> out;
  static const std::regex kInclude(R"(#[ \t]*include[ \t]*(["<]))");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      kInclude);
       it != std::sregex_iterator(); ++it) {
    const size_t open = static_cast<size_t>(it->position(1));
    const char close = original[open] == '<' ? '>' : '"';
    const size_t end = original.find(close, open + 1);
    if (end == std::string::npos) continue;
    out.push_back({LineOfOffset(original, open),
                   original.substr(open + 1, end - open - 1),
                   original[open] == '<'});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Individual rules. Each returns findings against the stripped view.
// ---------------------------------------------------------------------------

void CheckLayering(const std::string& path, const std::string& original,
                   const std::string& stripped,
                   std::vector<Violation>* out) {
  const std::string module = ModuleOf(path);
  if (module.empty()) return;  // bench/tests/tools may include anything
  const auto& dag = ModuleDag();
  const auto self = dag.find(module);
  if (self == dag.end()) {
    out->push_back({path, 1, "layering",
                    "module 'src/" + module +
                        "' is not in the declared module DAG; add it to "
                        "ModuleDag() in tools/colt_lint/lint.cc and to "
                        "DESIGN.md §9"});
    return;
  }
  for (const Include& inc : FindIncludes(original, stripped)) {
    if (inc.angled) continue;  // system/third-party headers
    const size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string target = inc.path.substr(0, slash);
    if (dag.find(target) == dag.end()) continue;  // not a project module
    if (target == module || self->second.count(target) > 0) continue;
    out->push_back(
        {path, inc.line, "layering",
         "src/" + module + " must not include \"" + inc.path +
             "\": '" + target + "' is not below '" + module +
             "' in the module DAG (common -> catalog -> index -> "
             "storage/query -> optimizer -> exec -> core -> baseline -> "
             "harness)"});
  }
}

void CheckStatusDiscard(const std::string& path, const std::string& stripped,
                        std::vector<Violation>* out) {
  static const std::regex kVoidCast(R"(\(\s*void\s*\)\s*[A-Za-z_:(!~0-9])");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      kVoidCast);
       it != std::sregex_iterator(); ++it) {
    out->push_back(
        {path, LineOfOffset(stripped, static_cast<size_t>(it->position())),
         "status-discard",
         "bare (void) cast: use ColtIgnoreStatus(...) to drop a "
         "Status/Result on purpose, or [[maybe_unused]] for unused "
         "variables and parameters"});
  }
}

void CheckDeterminism(const std::string& path, const std::string& stripped,
                      std::vector<Violation>* out) {
  if (path == "src/common/rng.h" || StartsWith(path, "src/common/logging")) {
    return;  // the sanctioned randomness / wall-clock sites
  }
  struct Pattern {
    const char* regex;
    const char* what;
  };
  static const Pattern kPatterns[] = {
      {R"((^|[^A-Za-z0-9_])(std\s*::\s*)?(rand|srand|rand_r)\s*\()",
       "rand()/srand()"},
      {R"(random_device)", "std::random_device"},
      {R"((^|[^A-Za-z0-9_])time\s*\(\s*(nullptr|NULL|0)\s*\))",
       "time(nullptr) seeding"},
      {R"(system_clock)", "std::chrono::system_clock"},
  };
  for (const Pattern& p : kPatterns) {
    const std::regex re(p.regex);
    for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
         it != std::sregex_iterator(); ++it) {
      out->push_back(
          {path, LineOfOffset(stripped, static_cast<size_t>(it->position())),
           "determinism",
           std::string(p.what) +
               " breaks run-to-run reproducibility of the Fig. 3-6 "
               "experiments; draw randomness from colt::Rng "
               "(src/common/rng.h) and time from metrics::WallTimer"});
    }
  }
}

// True when the `new` at `word_pos` is the initializer of a function-local
// leaky singleton (`static T* t = new T(...)`), the sanctioned idiom for
// registries that must survive static destruction (metrics, tracing, bench
// fixtures). Scans back to the previous statement boundary and requires the
// statement to open with `static`.
bool IsLeakySingletonNew(const std::string& stripped, size_t word_pos) {
  size_t begin = word_pos;
  while (begin > 0 && stripped[begin - 1] != ';' && stripped[begin - 1] != '{'
         && stripped[begin - 1] != '}') {
    --begin;
  }
  const std::string stmt = stripped.substr(begin, word_pos - begin);
  static const std::regex kLeaky(R"(^\s*static\b[^=]*\*[^=]*=\s*$)");
  return std::regex_match(stmt, kLeaky);
}

void CheckRawNewDelete(const std::string& path, const std::string& stripped,
                       std::vector<Violation>* out) {
  if (path == "src/index/btree.h" || path == "src/index/btree.cc") {
    return;  // the B+-tree owns its node store by design
  }
  static const std::regex kWord(R"((^|[^A-Za-z0-9_])(new|delete)\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      kWord);
       it != std::sregex_iterator(); ++it) {
    const size_t word_pos =
        static_cast<size_t>(it->position(2));
    if (it->str(2) == "delete") {
      // `= delete` (deleted special member) is not a deallocation.
      size_t j = word_pos;
      while (j > 0 && std::isspace(static_cast<unsigned char>(
                          stripped[j - 1]))) {
        --j;
      }
      if (j > 0 && stripped[j - 1] == '=') continue;
    } else if (IsLeakySingletonNew(stripped, word_pos)) {
      continue;
    }
    out->push_back({path, LineOfOffset(stripped, word_pos), "raw-new-delete",
                    "raw '" + it->str(2) +
                        "' outside src/index/btree: use std::unique_ptr / "
                        "containers (ownership bugs in the tuning loop are "
                        "unrecoverable)"});
  }
}

void CheckNakedThread(const std::string& path, const std::string& stripped,
                      std::vector<Violation>* out) {
  if (StartsWith(path, "src/common/thread_pool")) {
    return;  // the one sanctioned thread-creation site
  }
  struct Pattern {
    const char* regex;
    const char* what;
  };
  // std::this_thread (sleeps, yields) stays legal: the patterns anchor on
  // the creation tokens, which "this_thread" does not contain.
  static const Pattern kPatterns[] = {
      {R"(std\s*::\s*(jthread|thread)\b)", "std::thread/std::jthread"},
      {R"((^|[^A-Za-z0-9_])std\s*::\s*async\b)", "std::async"},
      {R"((^|[^A-Za-z0-9_])pthread_create\b)", "pthread_create"},
  };
  for (const Pattern& p : kPatterns) {
    const std::regex re(p.regex);
    for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), re);
         it != std::sregex_iterator(); ++it) {
      out->push_back(
          {path, LineOfOffset(stripped, static_cast<size_t>(it->position())),
           "naked-thread",
           std::string(p.what) +
               " outside src/common/thread_pool: route parallel work "
               "through colt::ThreadPool (ordered joins, per-task RNG "
               "streams, centralized shutdown) so the serial-equivalence "
               "contract of DESIGN.md §10 stays enforceable; for the core "
               "count use ThreadPool::HardwareConcurrency()"});
    }
  }
}

void CheckIostream(const std::string& path, const std::string& original,
                   const std::string& stripped,
                   std::vector<Violation>* out) {
  if (!StartsWith(path, "src/")) return;  // benches/tools/tests are CLIs
  if (StartsWith(path, "src/common/logging") ||
      StartsWith(path, "src/common/metrics") ||
      StartsWith(path, "src/common/tracing")) {
    return;
  }
  for (const Include& inc : FindIncludes(original, stripped)) {
    if (inc.angled && inc.path == "iostream") {
      out->push_back(
          {path, inc.line, "iostream",
           "<iostream> in src/ pulls static init and global stream state "
           "into the hot path; take a std::ostream& or use the logging "
           "layer"});
    }
  }
}

void CheckMetricNames(const std::string& path, const std::string& original,
                      const std::string& stripped,
                      std::vector<Violation>* out) {
  if (StartsWith(path, "src/common/metrics") ||
      StartsWith(path, "src/common/tracing") ||
      StartsWith(path, "src/common/provenance")) {
    return;  // the registry/tracer/recorder implementations take names as
             // parameters
  }
  // RecordEvent is the provenance emission point; event names follow the
  // metric-name contract (dotted snake_case literals) so the decision
  // taxonomy is greppable and stable across PRs.
  static const std::regex kCall(
      R"((GetCounter|GetGauge|GetHistogram|StartSpan|RecordEvent)\s*\()");
  static const std::regex kMetricName(R"([a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+)");
  static const std::regex kSpanName(R"([a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      kCall);
       it != std::sregex_iterator(); ++it) {
    const std::string func = it->str(1);
    size_t pos = static_cast<size_t>(it->position()) + it->length();
    while (pos < original.size() &&
           std::isspace(static_cast<unsigned char>(original[pos]))) {
      ++pos;
    }
    const int line =
        LineOfOffset(stripped, static_cast<size_t>(it->position()));
    if (pos >= original.size() || original[pos] != '"') {
      out->push_back({path, line, "metric-name",
                      func + " name must be a string literal so the metric "
                             "namespace is greppable and stable"});
      continue;
    }
    const size_t end = original.find('"', pos + 1);
    if (end == std::string::npos) continue;
    const std::string name = original.substr(pos + 1, end - pos - 1);
    const bool is_span = func == "StartSpan";
    const std::regex& shape = is_span ? kSpanName : kMetricName;
    if (!std::regex_match(name, shape)) {
      out->push_back(
          {path, line, "metric-name",
           func + " name \"" + name + "\" must be " +
               (is_span ? "snake_case (dots optional): e.g. \"on_query\""
                        : "dotted snake_case with at least two segments: "
                          "e.g. \"optimizer.whatif.calls\"")});
    }
  }
}

void CheckUncheckedFileIo(const std::string& path,
                          const std::string& stripped,
                          std::vector<Violation>* out) {
  if (StartsWith(path, "src/common/persist/")) {
    return;  // the sanctioned file-I/O layer; every call is checked there
  }
  // A call whose previous significant character ends a statement (or opens
  // a block) discards its return value. fwrite/fread may write/read less
  // than asked and fclose is where buffered write errors finally surface —
  // ignoring any of them turns a disk error into silent data loss.
  static const std::regex kCall(
      R"((^|[^A-Za-z0-9_:.>])(?:std\s*::\s*)?(fwrite|fread|fclose)\s*\()");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      kCall);
       it != std::sregex_iterator(); ++it) {
    size_t call_pos = static_cast<size_t>(it->position());
    if (it->length(1) > 0) ++call_pos;
    size_t j = call_pos;
    while (j > 0 &&
           std::isspace(static_cast<unsigned char>(stripped[j - 1]))) {
      --j;
    }
    if (j > 0 && stripped[j - 1] != ';' && stripped[j - 1] != '{' &&
        stripped[j - 1] != '}') {
      continue;  // the result feeds an expression — it is being checked
    }
    out->push_back(
        {path, LineOfOffset(stripped, call_pos), "unchecked-file-io",
         "unchecked '" + it->str(2) +
             "' return value outside src/common/persist: short writes and "
             "deferred close errors are how checkpoints corrupt silently; "
             "check the result (or route durability through "
             "colt::CheckpointStore)"});
  }
}

void CheckWhitespace(const std::string& path, const std::string& original,
                     std::vector<Violation>* out) {
  int line = 1;
  size_t line_start = 0;
  for (size_t i = 0; i <= original.size(); ++i) {
    if (i == original.size() || original[i] == '\n') {
      const size_t len = i - line_start;
      if (len > 0) {
        const char last = original[i - 1];
        if (last == '\r') {
          out->push_back({path, line, "whitespace",
                          "CRLF line ending; the tree is LF-only"});
        } else if (last == ' ' || last == '\t') {
          out->push_back({path, line, "whitespace", "trailing whitespace"});
        }
      }
      if (original.find('\t', line_start) < i) {
        out->push_back({path, line, "whitespace",
                        "tab character; indent with spaces"});
      }
      if (i == original.size()) {
        if (!original.empty() && original.back() != '\n') {
          out->push_back(
              {path, line, "whitespace", "missing newline at end of file"});
        }
        break;
      }
      ++line;
      line_start = i + 1;
    }
  }
}

}  // namespace

std::string Violation::ToString() const {
  return file + ":" + std::to_string(line) + ": " + rule + ": " + message;
}

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kRules = {
      "layering",     "status-discard", "determinism",
      "raw-new-delete", "naked-thread", "iostream",
      "metric-name",  "thread-role",   "worker-purity",
      "unchecked-file-io", "whitespace"};
  return kRules;
}

bool IsKnownRule(std::string_view rule) {
  const auto& rules = AllRules();
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

std::vector<Violation> LintFiles(const std::vector<FileContent>& files) {
  // Per-file: lex once, run the single-file rules, remember the stripped
  // view and suppressions for the cross-file pass.
  std::vector<LexedFile> lexed;
  std::vector<Suppressions> sups;
  lexed.reserve(files.size());
  sups.reserve(files.size());
  std::vector<Violation> out;
  std::vector<Violation> raw;
  for (const FileContent& file : files) {
    lexed.push_back(Lex(file.content));
    sups.push_back(ParseSuppressions(file.path, lexed.back()));
    const std::string& stripped = lexed.back().stripped;
    raw.clear();
    CheckLayering(file.path, file.content, stripped, &raw);
    CheckStatusDiscard(file.path, stripped, &raw);
    CheckDeterminism(file.path, stripped, &raw);
    CheckRawNewDelete(file.path, stripped, &raw);
    CheckNakedThread(file.path, stripped, &raw);
    CheckIostream(file.path, file.content, stripped, &raw);
    CheckMetricNames(file.path, file.content, stripped, &raw);
    CheckUncheckedFileIo(file.path, stripped, &raw);
    CheckWhitespace(file.path, file.content, &raw);
    const Suppressions& sup = sups.back();
    out.insert(out.end(), sup.errors.begin(), sup.errors.end());
    for (auto& v : raw) {
      if (!sup.Allows(v.rule, v.line)) out.push_back(std::move(v));
    }
  }

  // Cross-file: the thread-role analyzer sees the whole corpus at once, so
  // a role declared in a header binds call sites in every translation unit.
  std::map<std::string, size_t> index_of;
  std::vector<const std::string*> paths;
  std::vector<const std::string*> stripped;
  paths.reserve(files.size());
  stripped.reserve(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    index_of[files[i].path] = i;
    paths.push_back(&files[i].path);
    stripped.push_back(&lexed[i].stripped);
  }
  for (auto& v : internal::AnalyzeThreadRoles(paths, stripped)) {
    const auto it = index_of.find(v.file);
    if (it != index_of.end() && sups[it->second].Allows(v.rule, v.line)) {
      continue;
    }
    out.push_back(std::move(v));
  }

  std::sort(out.begin(), out.end(), [](const Violation& a,
                                       const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::vector<Violation> LintFileContent(const std::string& path,
                                       const std::string& content) {
  return LintFiles({{path, content}});
}

std::vector<Violation> LintTree(const std::string& root) {
  std::vector<FileContent> files;
  const fs::path base(root);
  for (const char* top : {"src", "bench", "tests", "tools"}) {
    const fs::path dir = base / top;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        if (name == "lint_fixtures" || name == "build" || name == "out" ||
            StartsWith(name, ".")) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(it->path(), std::ios::binary);
      std::stringstream buffer;
      buffer << in.rdbuf();
      files.push_back(
          {fs::relative(it->path(), base).generic_string(), buffer.str()});
    }
  }
  // Deterministic corpus order regardless of directory iteration order.
  std::sort(files.begin(), files.end(),
            [](const FileContent& a, const FileContent& b) {
              return a.path < b.path;
            });
  return LintFiles(files);
}

}  // namespace colt_lint
