#ifndef COLT_TOOLS_COLT_LINT_INTERNAL_H_
#define COLT_TOOLS_COLT_LINT_INTERNAL_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

/// Shared plumbing between the per-file rule engine (lint.cc) and the
/// cross-file thread-role analyzer (thread_roles.cc): the comment/string
/// stripping lexer and the suppression parser. Not part of the public
/// lint.h surface.
namespace colt_lint {
namespace internal {

/// One pass over a file producing
///  - `stripped`: same length as the input, with comment text and the
///    bodies of string/char literals replaced by spaces (quotes and
///    newlines kept), so token rules never fire on prose;
///  - the comment list (for suppression parsing).
/// Offsets in `stripped` line up with offsets in the original.
struct LexedFile {
  std::string stripped;
  struct Comment {
    int line;
    std::string text;
  };
  std::vector<Comment> comments;
};

LexedFile Lex(const std::string& src);

/// 1-based line number of `offset` in `s`.
int LineOfOffset(const std::string& s, size_t offset);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Parsed suppression state of one file: file-wide allow(<rule>) plus
/// line-scoped allow-next-line(<rule>) (which silences findings of that
/// rule on the first code line after the comment block carrying it).
struct Suppressions {
  std::set<std::string> file_wide;
  /// line -> rules silenced on exactly that line.
  std::map<int, std::set<std::string>> by_line;
  std::vector<Violation> errors;  // bad-suppression findings

  bool Allows(const std::string& rule, int line) const {
    if (file_wide.count(rule) > 0) return true;
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) > 0;
  }
};

Suppressions ParseSuppressions(const std::string& path,
                               const LexedFile& lexed);

/// Cross-file pass: enforces the thread-role contracts of
/// src/common/thread_annotations.h (see DESIGN.md §14) over the whole
/// corpus at once. `paths`, `stripped` are parallel arrays, one entry per
/// file, in corpus order.
std::vector<Violation> AnalyzeThreadRoles(
    const std::vector<const std::string*>& paths,
    const std::vector<const std::string*>& stripped);

}  // namespace internal
}  // namespace colt_lint

#endif  // COLT_TOOLS_COLT_LINT_INTERNAL_H_
