// Cross-file thread-role analysis (the "thread-role" and "worker-purity"
// rules; DESIGN.md §14).
//
// Two passes over the stripped corpus:
//
//  Pass A (per file, src/ only): a brace/paren scope walker that never
//  builds an AST. It classifies every '{' by the statement head preceding
//  it (namespace / class / function definition / lambda / plain block),
//  collects role-annotated declarations into a symbol table, records every
//  function definition with its call sites, and records lambdas handed to
//  ThreadPool::Submit/Map as pool tasks.
//
//  Pass B (whole corpus): resolves each definition's role by name+class
//  against the symbol table, computes which unannotated functions can
//  transitively reach an owner-only call, then reports: role-annotated
//  worker-safe/thread-neutral bodies calling owner-only (directly or
//  transitively), pool lambdas calling unannotated project functions, and
//  purity violations (provenance emission, global metrics registry, raw
//  Rng construction, const_cast, mutable statics, member writes from
//  const read paths or pool lambdas).
//
// Name resolution is deliberately conservative: a call site is matched by
// its last identifier segment, and if ANY same-named symbol is owner-only
// the call is treated as owner-only (this is how virtual dispatch and
// function pointers are widened — see DESIGN.md §14). False positives are
// silenced with a line-scoped allow-next-line suppression.
#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "internal.h"

namespace colt_lint {
namespace internal {
namespace {

enum class Role { kNone, kOwnerOnly, kWorkerSafe, kThreadNeutral };

const char* RoleName(Role role) {
  switch (role) {
    case Role::kOwnerOnly:
      return "COLT_OWNER_ONLY";
    case Role::kWorkerSafe:
      return "COLT_WORKER_SAFE";
    case Role::kThreadNeutral:
      return "COLT_THREAD_NEUTRAL";
    case Role::kNone:
      break;
  }
  return "(unannotated)";
}

/// A role-annotated declaration (or annotated definition head).
struct Symbol {
  std::string name;        // unqualified function name
  std::string class_name;  // enclosing class / explicit qualifier, "" free
  std::string file;
  int line = 0;
  Role role = Role::kNone;
};

struct CallSite {
  std::string name;
  /// Explicit `Qual::` qualifier at the call site, "" for unqualified
  /// calls. A qualified call never dispatches virtually, so it may be
  /// resolved strictly; unqualified calls get conservative name widening.
  std::string qualifier;
  int line = 0;
};

struct PurityEvent {
  enum Kind {
    kProvenance,
    kMetricsDefault,
    kRngDraw,
    kConstCast,
    kMutableStatic,
    kMemberWrite,
  };
  Kind kind;
  int line = 0;
  std::string detail;  // member / callee name for the message
};

struct FunctionDef {
  std::string name;
  std::string class_name;
  std::string file;
  int line = 0;
  Role declared_role = Role::kNone;  // role macro on the definition itself
  bool const_method = false;
  std::vector<CallSite> calls;
  std::vector<PurityEvent> purity;
  // Analysis state: resolved role and, for unannotated functions, the name
  // of an owner-only symbol reachable through unannotated callees.
  Role role = Role::kNone;
  std::string reaches_owner;
};

struct PoolLambda {
  std::string file;
  int line = 0;  // line of the lambda body's opening brace
  std::vector<CallSite> calls;
  std::vector<PurityEvent> purity;
};

struct Corpus {
  std::vector<Symbol> symbols;
  std::vector<FunctionDef> defs;
  std::vector<PoolLambda> pools;
  std::vector<Violation> violations;  // emitted during scanning
};

// ---------------------------------------------------------------------------
// Small text helpers.
// ---------------------------------------------------------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsKeywordish(const std::string& word) {
  static const std::set<std::string> kWords = {
      "if",       "for",      "while",    "switch",     "return",
      "sizeof",   "alignof",  "alignas",  "decltype",   "noexcept",
      "static_assert",        "catch",    "throw",      "new",
      "delete",   "void",     "bool",     "char",       "int",
      "float",    "double",   "auto",     "unsigned",   "signed",
      "long",     "short",    "const",    "constexpr",  "static",
      "case",     "defined",  "assert",   "typeid",     "operator",
      "this",     "typename", "template", "using",      "typedef",
      "explicit", "inline",   "virtual",  "override",   "final",
  };
  return kWords.count(word) > 0 || word.rfind("COLT_", 0) == 0;
}

/// Blanks preprocessor lines (first non-space char '#') to spaces, keeping
/// length and newlines so offsets still line up.
std::string BlankPreprocessor(const std::string& text) {
  std::string out = text;
  size_t line_start = 0;
  for (size_t i = 0; i <= out.size(); ++i) {
    if (i == out.size() || out[i] == '\n') {
      size_t j = line_start;
      while (j < i && std::isspace(static_cast<unsigned char>(out[j]))) ++j;
      if (j < i && out[j] == '#') {
        for (size_t k = line_start; k < i; ++k) out[k] = ' ';
      }
      line_start = i + 1;
    }
  }
  return out;
}

bool AllWhitespace(std::string_view s) {
  for (const char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Finds every role macro in `text` as (offset, role).
std::vector<std::pair<size_t, Role>> FindRoleMacros(const std::string& text) {
  static const std::regex kMacro(
      R"(\b(COLT_OWNER_ONLY|COLT_WORKER_SAFE|COLT_THREAD_NEUTRAL)\b)");
  std::vector<std::pair<size_t, Role>> out;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kMacro);
       it != std::sregex_iterator(); ++it) {
    const std::string token = it->str(1);
    Role role = Role::kNone;
    if (token == "COLT_OWNER_ONLY") role = Role::kOwnerOnly;
    if (token == "COLT_WORKER_SAFE") role = Role::kWorkerSafe;
    if (token == "COLT_THREAD_NEUTRAL") role = Role::kThreadNeutral;
    out.emplace_back(static_cast<size_t>(it->position()), role);
  }
  return out;
}

/// Walks backward from `pos` (start of a function name inside `text`) over
/// a `Qual::` chain and returns the nearest qualifier segment ("" if the
/// name is unqualified). Skips template argument lists: `Foo<T>::Bar`
/// resolves to "Foo".
std::string QualifierBefore(const std::string& text, size_t pos) {
  size_t i = pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1]))) --i;
  if (i < 2 || text[i - 1] != ':' || text[i - 2] != ':') return "";
  i -= 2;
  while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1]))) --i;
  if (i > 0 && text[i - 1] == '>') {
    int depth = 0;
    while (i > 0) {
      --i;
      if (text[i] == '>') ++depth;
      if (text[i] == '<' && --depth == 0) break;
    }
    while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1]))) --i;
  }
  const size_t end = i;
  while (i > 0 && IsIdentChar(text[i - 1])) --i;
  return text.substr(i, end - i);
}

// ---------------------------------------------------------------------------
// Statement-head classification: what kind of scope does this '{' open?
// ---------------------------------------------------------------------------

struct HeadInfo {
  enum Kind { kNamespace, kClass, kFunction, kLambda, kBlock };
  Kind kind = kBlock;
  std::string name;       // function / class name
  std::string qualifier;  // "Cls" for out-of-line Cls::Fn definitions
  Role role = Role::kNone;
  bool role_conflict = false;
  bool const_method = false;
  bool pool_lambda = false;
  size_t name_offset = 0;    // offset of `name` within the head
  size_t lambda_begin = 0;   // offset where the lambda introducer starts
};

HeadInfo ClassifyHead(const std::string& raw_head) {
  HeadInfo info;
  const std::string head = BlankPreprocessor(raw_head);
  if (AllWhitespace(head)) return info;

  static const std::regex kControl(
      R"(^\s*(if|else|for|while|switch|do|try|catch|case|default)\b)");
  static const std::regex kNamespaceRe(R"(^\s*(inline\s+)?namespace\b)");
  static const std::regex kEnumRe(
      R"(^\s*(template\s*<[\s\S]*>\s*)?enum\b)");
  static const std::regex kClassRe(
      R"(^\s*(template\s*<[\s\S]*>\s*)?(class|struct|union)\b)");
  // Lambda introducer at the very end of the head: [caps](params) specs.
  static const std::regex kLambdaRe(
      R"(\[[^\[\]]*\]\s*(\([^()]*(?:\([^()]*\)[^()]*)*\))?\s*(?:mutable\b|constexpr\b|noexcept\b|\s)*(?:->[^{]*)?$)");
  // `Submit(` / `Map(` still open when the lambda starts.
  static const std::regex kPoolPrefix(R"(\b(Submit|Map)\s*\([^)]*$)");
  // name(params) + trailing specifiers, anchored at the end of the head.
  static const std::regex kFunctionRe(
      R"(([A-Za-z_~]\w*)\s*(\([^()]*(?:\([^()]*\)[^()]*)*\))((?:const\b|noexcept\s*\([^()]*\)|noexcept\b|override\b|final\b|mutable\b|->\s*[^{]*|\s)*)$)");

  std::smatch m;
  if (std::regex_search(head, m, kControl)) return info;
  if (std::regex_search(head, m, kNamespaceRe)) {
    info.kind = HeadInfo::kNamespace;
    return info;
  }
  if (std::regex_search(head, m, kEnumRe)) return info;
  if (std::regex_search(head, m, kClassRe)) {
    info.kind = HeadInfo::kClass;
    // Name: last identifier before the base-clause ':' (skipping "final"),
    // so attribute macros between the keyword and the name are tolerated.
    std::string decl = head;
    for (size_t i = m.position(2) + m.length(2); i + 1 < decl.size(); ++i) {
      if (decl[i] == ':' && decl[i + 1] != ':' &&
          (i == 0 || decl[i - 1] != ':')) {
        decl = decl.substr(0, i);
        break;
      }
    }
    static const std::regex kIdent(R"([A-Za-z_]\w*)");
    for (auto it = std::sregex_iterator(decl.begin(), decl.end(), kIdent);
         it != std::sregex_iterator(); ++it) {
      if (it->str() != "final") info.name = it->str();
    }
    return info;
  }
  if (std::regex_search(head, m, kLambdaRe)) {
    info.kind = HeadInfo::kLambda;
    info.lambda_begin = static_cast<size_t>(m.position());
    const std::string prefix = head.substr(0, info.lambda_begin);
    info.pool_lambda = std::regex_search(prefix, kPoolPrefix);
    return info;
  }
  // Function definitions: strip a constructor member-init list first (the
  // last `) :` not part of `::`), then match the tail.
  std::string fn_head = head;
  for (size_t i = fn_head.size(); i-- > 1;) {
    if (fn_head[i] == ':' && fn_head[i - 1] != ':' &&
        (i + 1 >= fn_head.size() || fn_head[i + 1] != ':')) {
      size_t j = i;
      while (j > 0 &&
             std::isspace(static_cast<unsigned char>(fn_head[j - 1]))) {
        --j;
      }
      if (j > 0 && fn_head[j - 1] == ')') {
        fn_head = fn_head.substr(0, i);
        break;
      }
    }
  }
  if (std::regex_search(fn_head, m, kFunctionRe)) {
    const std::string name = m.str(1);
    if (!IsKeywordish(name)) {
      info.kind = HeadInfo::kFunction;
      info.name = name;
      info.name_offset = static_cast<size_t>(m.position(1));
      info.qualifier = QualifierBefore(fn_head, info.name_offset);
      static const std::regex kConst(R"(\bconst\b)");
      info.const_method = std::regex_search(m.str(3), kConst);
      const auto macros = FindRoleMacros(head);
      for (const auto& [off, role] : macros) {
        if (info.role == Role::kNone) {
          info.role = role;
        } else if (info.role != role) {
          info.role_conflict = true;
        }
      }
    }
  }
  return info;
}

// ---------------------------------------------------------------------------
// Pass A: per-file scope walker.
// ---------------------------------------------------------------------------

class FileScanner {
 public:
  FileScanner(const std::string& path, const std::string& stripped,
              Corpus* corpus)
      : path_(path), stripped_(stripped), corpus_(corpus) {}

  void Scan() {
    size_t stmt_start = 0;
    int paren_depth = 0;
    for (size_t i = 0; i < stripped_.size(); ++i) {
      switch (stripped_[i]) {
        case '(':
          ++paren_depth;
          break;
        case ')':
          if (paren_depth > 0) --paren_depth;
          break;
        case ';':
          if (paren_depth == StmtDepth()) {
            ProcessStatement(stmt_start, i);
            stmt_start = i + 1;
          }
          break;
        case '{':
          OpenScope(stmt_start, i, paren_depth);
          stmt_start = i + 1;
          break;
        case '}':
          ProcessStatement(stmt_start, i);
          if (!scopes_.empty()) scopes_.pop_back();
          stmt_start = i + 1;
          break;
        default:
          break;
      }
    }
  }

 private:
  struct Target {
    enum Kind { kNone, kDef, kPool };
    Kind kind = kNone;
    size_t index = 0;
  };

  struct Scope {
    HeadInfo::Kind kind = HeadInfo::kBlock;
    std::string class_name;  // for kClass
    Target target;           // function/pool the braces contribute to
    int entry_paren_depth = 0;
  };

  int StmtDepth() const {
    return scopes_.empty() ? 0 : scopes_.back().entry_paren_depth;
  }

  Target CurrentTarget() const {
    return scopes_.empty() ? Target{} : scopes_.back().target;
  }

  std::string EnclosingClassName() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == HeadInfo::kClass) return it->class_name;
    }
    return "";
  }

  int LineAt(size_t offset) const { return LineOfOffset(stripped_, offset); }

  void OpenScope(size_t stmt_start, size_t brace, int paren_depth) {
    const std::string head =
        stripped_.substr(stmt_start, brace - stmt_start);
    HeadInfo info = ClassifyHead(head);
    Scope scope;
    scope.entry_paren_depth = paren_depth;
    scope.kind = info.kind;
    switch (info.kind) {
      case HeadInfo::kNamespace:
        break;
      case HeadInfo::kClass:
        scope.class_name = info.name;
        break;
      case HeadInfo::kFunction: {
        FunctionDef def;
        def.name = info.name;
        def.class_name = info.qualifier.empty() ? EnclosingClassName()
                                                : info.qualifier;
        def.file = path_;
        def.line = LineAt(stmt_start + info.name_offset);
        def.declared_role = info.role;
        def.const_method = info.const_method;
        if (info.role_conflict) {
          corpus_->violations.push_back(
              {path_, def.line, "thread-role",
               "'" + def.name +
                   "' carries two different thread-role annotations; a "
                   "function has exactly one role"});
        }
        if (info.role != Role::kNone) {
          corpus_->symbols.push_back({def.name, def.class_name, path_,
                                      def.line, info.role});
        }
        scope.target = {Target::kDef, corpus_->defs.size()};
        corpus_->defs.push_back(std::move(def));
        break;
      }
      case HeadInfo::kLambda: {
        // The text before the introducer (e.g. `pool_->Submit(`) belongs
        // to the enclosing function.
        Emit(head.substr(0, info.lambda_begin), stmt_start, CurrentTarget());
        if (info.pool_lambda) {
          scope.target = {Target::kPool, corpus_->pools.size()};
          corpus_->pools.push_back({path_, LineAt(brace), {}, {}});
        } else {
          scope.target = CurrentTarget();
        }
        break;
      }
      case HeadInfo::kBlock:
        scope.target = CurrentTarget();
        if (scope.target.kind == Target::kNone) {
          ProcessDecl(head, stmt_start);
        } else {
          Emit(head, stmt_start, scope.target);  // calls in conditions
        }
        break;
    }
    scopes_.push_back(std::move(scope));
  }

  void ProcessStatement(size_t start, size_t end) {
    const std::string stmt = stripped_.substr(start, end - start);
    if (AllWhitespace(stmt)) return;
    const Target target = CurrentTarget();
    if (target.kind == Target::kNone) {
      ProcessDecl(stmt, start);
    } else {
      Emit(stmt, start, target);
    }
  }

  /// Declaration context: record role-annotated function declarations.
  void ProcessDecl(const std::string& stmt_in, size_t abs_start) {
    const std::string stmt = BlankPreprocessor(stmt_in);
    const auto macros = FindRoleMacros(stmt);
    if (macros.empty()) return;
    const int line = LineAt(abs_start + macros.front().first);
    Role role = macros.front().second;
    for (const auto& [off, other] : macros) {
      if (other != role) {
        corpus_->violations.push_back(
            {path_, line, "thread-role",
             "declaration carries two different thread-role annotations; a "
             "function has exactly one role"});
        return;
      }
    }
    // The declared name: first identifier followed by '(' that is not a
    // keyword, a COLT_ macro, or a type keyword.
    static const std::regex kCall(R"(([A-Za-z_~]\w*)\s*\()");
    for (auto it = std::sregex_iterator(stmt.begin(), stmt.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::string name = it->str(1);
      if (IsKeywordish(name)) continue;
      const size_t pos = static_cast<size_t>(it->position(1));
      std::string qualifier = QualifierBefore(stmt, pos);
      if (qualifier.empty()) qualifier = EnclosingClassName();
      corpus_->symbols.push_back(
          {name, qualifier, path_, LineAt(abs_start + pos), role});
      return;
    }
    // Role macro with no function declarator (e.g. on a class): the
    // analyzer only understands function roles.
    corpus_->violations.push_back(
        {path_, line, "thread-role",
         "thread-role annotation is not attached to a function "
         "declaration; annotate the functions, not the type"});
  }

  /// Body context: record call sites and purity events into `target`.
  void Emit(const std::string& text, size_t abs_start, Target target) {
    if (target.kind == Target::kNone || AllWhitespace(text)) return;
    std::vector<CallSite>* calls = nullptr;
    std::vector<PurityEvent>* purity = nullptr;
    if (target.kind == Target::kDef) {
      calls = &corpus_->defs[target.index].calls;
      purity = &corpus_->defs[target.index].purity;
    } else {
      calls = &corpus_->pools[target.index].calls;
      purity = &corpus_->pools[target.index].purity;
    }

    static const std::regex kCall(R"(([A-Za-z_]\w*)\s*\()");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::string name = it->str(1);
      if (IsKeywordish(name)) continue;
      const size_t pos = static_cast<size_t>(it->position(1));
      const int line = LineAt(abs_start + pos);
      calls->push_back({name, QualifierBefore(text, pos), line});
      if (name == "RecordEvent" &&
          !StartsWith(path_, "src/common/provenance")) {
        purity->push_back({PurityEvent::kProvenance, line, name});
      }
    }

    static const std::regex kMetricsDefault(
        R"(MetricsRegistry\s*::\s*Default\s*\()");
    std::smatch m;
    if (!StartsWith(path_, "src/common/metrics") &&
        std::regex_search(text, m, kMetricsDefault)) {
      purity->push_back(
          {PurityEvent::kMetricsDefault,
           LineAt(abs_start + static_cast<size_t>(m.position())),
           "MetricsRegistry::Default"});
    }

    static const std::regex kRng(R"(\bRng\b)");
    static const std::regex kTaskRng(R"(\bTaskRng\b)");
    if (path_ != "src/common/rng.h" &&
        !StartsWith(path_, "src/common/thread_pool") &&
        std::regex_search(text, m, kRng) &&
        !std::regex_search(text, kTaskRng)) {
      purity->push_back({PurityEvent::kRngDraw,
                         LineAt(abs_start + static_cast<size_t>(m.position())),
                         "Rng"});
    }

    static const std::regex kConstCast(R"(\bconst_cast\b)");
    if (std::regex_search(text, m, kConstCast)) {
      purity->push_back({PurityEvent::kConstCast,
                         LineAt(abs_start + static_cast<size_t>(m.position())),
                         "const_cast"});
    }

    static const std::regex kStatic(R"(^\s*static\b)");
    // Const(expr) statics are immutable; thread_local statics are
    // per-thread by construction — neither is shared mutable state.
    static const std::regex kConstish(R"(\b(const|constexpr|thread_local)\b)");
    if (std::regex_search(text, m, kStatic) &&
        !std::regex_search(text, kConstish)) {
      purity->push_back({PurityEvent::kMutableStatic,
                         LineAt(abs_start + static_cast<size_t>(m.position())),
                         "static"});
    }

    // Bare `member_` mutations: assignment/compound ops, ++/--, and
    // mutating container calls, with the member not reached through `.` or
    // `->` (those target some other object).
    static const std::regex kMemberWrite(
        R"((^|[^\w.>])([A-Za-z]\w*_)\s*(\+\+|--|[+\-*/|&^]?=[^=]|\.(push_back|pop_back|emplace_back|emplace|insert|erase|clear|resize|assign|reserve)\s*\())");
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        kMemberWrite);
         it != std::sregex_iterator(); ++it) {
      purity->push_back(
          {PurityEvent::kMemberWrite,
           LineAt(abs_start + static_cast<size_t>(it->position(2))),
           it->str(2)});
    }
  }

  const std::string& path_;
  const std::string& stripped_;
  Corpus* corpus_;
  std::vector<Scope> scopes_;
};

// ---------------------------------------------------------------------------
// Pass B: whole-corpus analysis.
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  explicit Analyzer(Corpus* corpus) : corpus_(corpus) {}

  std::vector<Violation> Run() {
    out_ = std::move(corpus_->violations);
    IndexSymbols();
    ResolveDefRoles();
    ComputeReachability();
    for (const FunctionDef& def : corpus_->defs) {
      if (def.role == Role::kWorkerSafe || def.role == Role::kThreadNeutral) {
        CheckBody(def.file, RoleName(def.role), def.name, def.calls,
                  /*pool=*/false);
        CheckPurity(def, def.purity);
      }
    }
    for (const PoolLambda& pool : corpus_->pools) {
      CheckBody(pool.file, "pool-submitted lambda", "", pool.calls,
                /*pool=*/true);
      CheckPoolPurity(pool);
    }
    std::sort(out_.begin(), out_.end(),
              [](const Violation& a, const Violation& b) {
                return std::tie(a.file, a.line, a.rule, a.message) <
                       std::tie(b.file, b.line, b.rule, b.message);
              });
    out_.erase(std::unique(out_.begin(), out_.end(),
                           [](const Violation& a, const Violation& b) {
                             return std::tie(a.file, a.line, a.rule,
                                             a.message) ==
                                    std::tie(b.file, b.line, b.rule,
                                             b.message);
                           }),
               out_.end());
    return std::move(out_);
  }

 private:
  void IndexSymbols() {
    std::map<std::pair<std::string, std::string>, const Symbol*> first;
    for (const Symbol& sym : corpus_->symbols) {
      by_name_[sym.name].push_back(&sym);
      const auto key = std::make_pair(sym.class_name, sym.name);
      const auto [it, inserted] = first.emplace(key, &sym);
      if (!inserted && it->second->role != sym.role) {
        out_.push_back(
            {sym.file, sym.line, "thread-role",
             "'" + Qualified(sym.class_name, sym.name) + "' is declared " +
                 RoleName(sym.role) + " here but " +
                 RoleName(it->second->role) + " at " + it->second->file +
                 ":" + std::to_string(it->second->line) +
                 "; a function has exactly one thread role"});
      }
    }
  }

  void ResolveDefRoles() {
    for (FunctionDef& def : corpus_->defs) {
      defs_by_name_[def.name].push_back(&def);
      def.role = def.declared_role;
      if (def.role != Role::kNone) continue;
      const auto it = by_name_.find(def.name);
      if (it == by_name_.end()) continue;
      // Strict class match only: name-based widening is for call sites,
      // not for deciding which body a role governs.
      for (const Symbol* sym : it->second) {
        if (sym->class_name == def.class_name) {
          def.role = sym->role;
          break;
        }
      }
    }
  }

  /// The annotated symbols a call can bind to. An explicitly qualified
  /// call (`Cls::Fn(...)`) never dispatches virtually, so when the
  /// qualifier matches annotated symbols it resolves strictly to those;
  /// otherwise (unqualified, or a qualifier we know nothing about — e.g.
  /// a base class whose override carries the annotation) the call widens
  /// conservatively over every same-named symbol.
  std::vector<const Symbol*> Candidates(const CallSite& call) const {
    const auto it = by_name_.find(call.name);
    if (it == by_name_.end()) return {};
    if (!call.qualifier.empty()) {
      std::vector<const Symbol*> strict;
      for (const Symbol* sym : it->second) {
        if (sym->class_name == call.qualifier) strict.push_back(sym);
      }
      if (!strict.empty()) return strict;
    }
    return it->second;
  }

  const Symbol* OwnerWitness(const CallSite& call) const {
    for (const Symbol* sym : Candidates(call)) {
      if (sym->role == Role::kOwnerOnly) return sym;
    }
    return nullptr;
  }

  bool HasWorkerRole(const CallSite& call) const {
    for (const Symbol* sym : Candidates(call)) {
      if (sym->role == Role::kWorkerSafe ||
          sym->role == Role::kThreadNeutral) {
        return true;
      }
    }
    return false;
  }

  /// Fixpoint: an unannotated function "reaches owner" if it calls an
  /// owner-only symbol or another unannotated function that does.
  /// Role-annotated callees stop propagation — their bodies are judged at
  /// their own definitions.
  void ComputeReachability() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (FunctionDef& def : corpus_->defs) {
        if (def.role != Role::kNone || !def.reaches_owner.empty()) continue;
        for (const CallSite& call : def.calls) {
          if (const Symbol* owner = OwnerWitness(call)) {
            def.reaches_owner = owner->name;
            changed = true;
            break;
          }
          const auto it = defs_by_name_.find(call.name);
          if (it == defs_by_name_.end()) continue;
          for (const FunctionDef* callee : it->second) {
            if (callee->role == Role::kNone &&
                !callee->reaches_owner.empty()) {
              def.reaches_owner = callee->reaches_owner;
              changed = true;
              break;
            }
          }
          if (!def.reaches_owner.empty()) break;
        }
      }
    }
  }

  /// The transitive witness for an unannotated callee, or "" if none.
  std::string ReachesOwnerVia(const std::string& name) const {
    const auto it = defs_by_name_.find(name);
    if (it == defs_by_name_.end()) return "";
    for (const FunctionDef* def : it->second) {
      if (def->role == Role::kNone && !def->reaches_owner.empty()) {
        return def->reaches_owner;
      }
    }
    return "";
  }

  bool IsProjectFunction(const std::string& name) const {
    return defs_by_name_.count(name) > 0;
  }

  void CheckBody(const std::string& file, const std::string& caller_label,
                 const std::string& caller_name,
                 const std::vector<CallSite>& calls, bool pool) {
    const std::string who =
        pool ? caller_label : caller_label + " function '" + caller_name + "'";
    for (const CallSite& call : calls) {
      if (const Symbol* owner = OwnerWitness(call)) {
        if (!pool && call.name == caller_name) continue;  // self/overload
        out_.push_back(
            {file, call.line, "thread-role",
             who + " calls '" + call.name + "', declared COLT_OWNER_ONLY at " +
                 owner->file + ":" + std::to_string(owner->line) +
                 "; owner-only APIs must run on the tuning thread only "
                 "(name-based match widens over all same-named overloads "
                 "and overrides)"});
        continue;
      }
      if (HasWorkerRole(call)) continue;
      const std::string via = ReachesOwnerVia(call.name);
      if (!via.empty()) {
        out_.push_back(
            {file, call.line, "thread-role",
             who + " calls '" + call.name +
                 "', which transitively reaches COLT_OWNER_ONLY '" + via +
                 "' through unannotated callees; either annotate the chain "
                 "or route the owner-only work back to the tuning thread"});
        continue;
      }
      if (pool && IsProjectFunction(call.name)) {
        out_.push_back(
            {file, call.line, "thread-role",
             "lambda submitted to ThreadPool calls '" + call.name +
                 "', which has no thread-role annotation; annotate it "
                 "COLT_WORKER_SAFE or COLT_THREAD_NEUTRAL in its header "
                 "(src/common/thread_annotations.h) so the worker contract "
                 "is explicit"});
      }
    }
  }

  void CheckPurity(const FunctionDef& def,
                   const std::vector<PurityEvent>& events) {
    for (const PurityEvent& ev : events) {
      if (ev.kind == PurityEvent::kMemberWrite &&
          !(def.const_method && def.role == Role::kWorkerSafe)) {
        continue;  // non-const worker methods may write their own buffers
      }
      ReportPurity(def.file, RoleName(def.role) + std::string(" function '") +
                                 def.name + "'",
                   ev, /*pool=*/false);
    }
  }

  void CheckPoolPurity(const PoolLambda& pool) {
    for (const PurityEvent& ev : pool.purity) {
      ReportPurity(pool.file, "pool-submitted lambda", ev, /*pool=*/true);
    }
  }

  void ReportPurity(const std::string& file, const std::string& who,
                    const PurityEvent& ev, bool pool) {
    std::string what;
    switch (ev.kind) {
      case PurityEvent::kProvenance:
        what = "emits a provenance event (RecordEvent); the flight "
               "recorder is single-writer — workers return data and the "
               "owner records the decision";
        break;
      case PurityEvent::kMetricsDefault:
        what = "touches the global MetricsRegistry::Default(); worker code "
               "writes its per-worker registry, merged at the epoch "
               "boundary in slot order (DESIGN.md §10)";
        break;
      case PurityEvent::kRngDraw:
        what = "constructs an Rng outside ThreadPool::TaskRng; "
               "pool-executed randomness must be a function of "
               "(parent_seed, task_index) so draws are "
               "schedule-independent";
        break;
      case PurityEvent::kConstCast:
        what = "uses const_cast, subverting the const-purity the worker "
               "read-path contract relies on";
        break;
      case PurityEvent::kMutableStatic:
        what = "declares a mutable function-local static — hidden shared "
               "state that races once the function runs on workers";
        break;
      case PurityEvent::kMemberWrite:
        what = pool ? "writes captured member '" + ev.detail +
                          "'; workers write only per-task results and "
                          "per-worker buffers merged by the owner"
                    : "writes member '" + ev.detail +
                          "' from a const (Peek-style) worker read path; "
                          "worker read paths must stay pure";
        break;
    }
    out_.push_back({file, ev.line, "worker-purity", who + " " + what});
  }

  static std::string Qualified(const std::string& class_name,
                               const std::string& name) {
    return class_name.empty() ? name : class_name + "::" + name;
  }

  Corpus* corpus_;
  std::vector<Violation> out_;
  std::map<std::string, std::vector<const Symbol*>> by_name_;
  std::map<std::string, std::vector<FunctionDef*>> defs_by_name_;
};

}  // namespace

std::vector<Violation> AnalyzeThreadRoles(
    const std::vector<const std::string*>& paths,
    const std::vector<const std::string*>& stripped) {
  Corpus corpus;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!StartsWith(*paths[i], "src/")) continue;
    FileScanner(*paths[i], *stripped[i], &corpus).Scan();
  }
  return Analyzer(&corpus).Run();
}

}  // namespace internal
}  // namespace colt_lint
