/// Kill-restart recovery gate (DESIGN.md §12). For each injected crash
/// point, a forked child runs COLT on a shifting TPC-H workload with
/// checkpointing enabled and dies mid-commit via the persist crash hook
/// (_Exit, no destructors — exactly what kill -9 leaves on disk). The
/// parent then recovers from the state directory in a fresh tuner,
/// finishes the workload, and requires the post-recovery epoch-report CSV
/// to be byte-identical to an uninterrupted reference run at the same
/// seed. Exit code 0 = every crash point passed.
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace {

struct GateOptions {
  uint64_t seed = 7;
  int queries_per_phase = 120;
  /// Commit (= epoch) number whose checkpoint the crash interrupts. Late
  /// enough that real tuning state (hot set, materialized indexes,
  /// profiler statistics) is at stake.
  int crash_commit = 12;
  std::string state_root;
};

std::vector<colt::Query> BuildWorkload(colt::Catalog* catalog,
                                       const GateOptions& opts) {
  const std::vector<colt::QueryDistribution> dists =
      colt::ExperimentWorkloads::ShiftingPhases(catalog);
  std::vector<colt::WorkloadPhase> phases;
  for (size_t i = 0; i < dists.size() && i < 2; ++i) {
    phases.push_back({dists[i], opts.queries_per_phase});
  }
  colt::WorkloadGenerator gen(catalog, opts.seed);
  return colt::GeneratePhasedWorkload(gen, phases, /*transition_length=*/30,
                                      /*phase_of_query=*/nullptr);
}

colt::ColtConfig BaseConfig() {
  colt::ColtConfig config;
  config.storage_budget_bytes = 96LL * 1024 * 1024;
  return config;
}

std::string EpochCsv(const std::vector<colt::EpochReport>& reports) {
  std::ostringstream out;
  colt::ColtIgnoreStatus(colt::WriteEpochReportCsv(reports, out));
  return out.str();
}

/// Runs the whole workload with checkpointing on and a crash rule that
/// fires inside commit #crash_commit; never returns on the expected path.
void RunVictim(const GateOptions& opts, const std::string& state_dir,
               const char* crash_site) {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const std::vector<colt::Query> workload = BuildWorkload(&catalog, opts);
  colt::ColtConfig config = BaseConfig();
  config.state_dir = state_dir;
  config.fault.FireOnCheck(crash_site, opts.crash_commit);
  colt::QueryOptimizer optimizer(&catalog);
  colt::ColtTuner tuner(&catalog, &optimizer, config);
  tuner.set_persist_crash_hook([] { ::_Exit(42); });
  for (const colt::Query& q : workload) tuner.OnQuery(q);
  // The crash site never fired: the workload is too short for crash_commit.
  ::_Exit(3);
}

bool RunGate(const GateOptions& opts, const char* crash_site,
             const std::vector<colt::EpochReport>& reference,
             const std::string& csv_dir) {
  std::string leaf = crash_site;
  for (char& c : leaf) {
    if (c == '.') c = '_';
  }
  const std::string state_dir = opts.state_root + "/" + leaf;
  ::mkdir(state_dir.c_str(), 0755);
  std::remove((state_dir + "/wal.log").c_str());
  std::remove((state_dir + "/snap-0.bin").c_str());
  std::remove((state_dir + "/snap-1.bin").c_str());

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "[%s] fork failed\n", crash_site);
    return false;
  }
  if (pid == 0) RunVictim(opts, state_dir, crash_site);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 42) {
    std::fprintf(stderr,
                 "[%s] FAIL: victim exited %d, expected crash-hook 42\n",
                 crash_site, WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    return false;
  }

  // Recover in this process from whatever the dead child left on disk.
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const std::vector<colt::Query> workload = BuildWorkload(&catalog, opts);
  colt::ColtConfig config = BaseConfig();
  config.state_dir = state_dir;
  colt::QueryOptimizer optimizer(&catalog);
  colt::ColtTuner tuner(&catalog, &optimizer, config);
  const colt::Result<bool> resumed = tuner.RecoverFromStateDir();
  if (!resumed.ok()) {
    std::fprintf(stderr, "[%s] FAIL: recovery error: %s\n", crash_site,
                 resumed.status().ToString().c_str());
    return false;
  }
  if (!*resumed || tuner.queries_observed() <= 0) {
    std::fprintf(stderr,
                 "[%s] FAIL: cold start — no durable checkpoint survived "
                 "the crash\n",
                 crash_site);
    return false;
  }
  const int resumed_epoch = tuner.current_epoch();
  // Crashing before the rename loses at most the in-flight commit;
  // crashing after it may keep it. Anything else means recovery picked an
  // impossible snapshot.
  if (resumed_epoch != opts.crash_commit &&
      resumed_epoch != opts.crash_commit - 1) {
    std::fprintf(stderr,
                 "[%s] FAIL: resumed at epoch %d, expected %d or %d\n",
                 crash_site, resumed_epoch, opts.crash_commit - 1,
                 opts.crash_commit);
    return false;
  }
  for (size_t i = static_cast<size_t>(tuner.queries_observed());
       i < workload.size(); ++i) {
    tuner.OnQuery(workload[i]);
  }

  // The gate: every epoch report produced after recovery must serialize to
  // exactly the bytes the uninterrupted run produced for those epochs.
  const std::vector<colt::EpochReport> tail(
      reference.begin() + resumed_epoch, reference.end());
  const std::string want = EpochCsv(tail);
  const std::string got = EpochCsv(tuner.epoch_reports());
  if (want != got) {
    std::fprintf(stderr,
                 "[%s] FAIL: post-recovery epoch CSV diverges from the "
                 "uninterrupted run (resumed at epoch %d)\n",
                 crash_site, resumed_epoch);
    colt::ColtIgnoreStatus(colt::MaybeWriteCsvFile(
        csv_dir, std::string("crash_recovery_got_") + crash_site + ".csv",
        [&](std::ostream& out) {
          out << got;
          return colt::Status();
        }));
    return false;
  }
  std::printf("[%s] PASS: crashed in commit %d, resumed at epoch %d, "
              "%zu post-recovery epochs byte-identical\n",
              crash_site, opts.crash_commit, resumed_epoch,
              tuner.epoch_reports().size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  GateOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opts.seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--queries-per-phase=", 20) == 0) {
      opts.queries_per_phase = std::atoi(argv[i] + 20);
    } else if (std::strncmp(argv[i], "--crash-commit=", 15) == 0) {
      opts.crash_commit = std::atoi(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--state-dir=", 12) == 0) {
      opts.state_root = argv[i] + 12;
    }
  }
  if (opts.state_root.empty()) {
    char tmpl[] = "/tmp/colt_crash_recovery_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "cannot create state directory\n");
      return 1;
    }
    opts.state_root = made;
  }
  const char* csv_env = std::getenv("COLT_CSV_DIR");
  const std::string csv_dir = csv_env != nullptr ? csv_env : "";

  std::printf("Crash-recovery gate: seed=%llu, 2 phases x %d queries, "
              "crash at commit %d, state under %s\n\n",
              static_cast<unsigned long long>(opts.seed),
              opts.queries_per_phase, opts.crash_commit,
              opts.state_root.c_str());

  // Uninterrupted reference at the same seed, persistence off.
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const std::vector<colt::Query> workload = BuildWorkload(&catalog, opts);
  const colt::ColtRunResult reference =
      colt::RunColtWorkload(&catalog, workload, BaseConfig());
  colt::ColtIgnoreStatus(colt::MaybeWriteCsvFile(
      csv_dir, "crash_recovery_ref.csv", [&](std::ostream& out) {
        return colt::WriteEpochReportCsv(reference.epochs, out);
      }));
  std::printf("reference: %zu queries, %zu epochs, %zu indexes "
              "materialized\n",
              workload.size(), reference.epochs.size(),
              reference.final_materialized.size());

  const char* kCrashSites[] = {
      colt::fault_sites::kPersistCrashAfterWalBegin,
      colt::fault_sites::kPersistCrashBeforeRename,
      colt::fault_sites::kPersistCrashAfterRename,
  };
  int failures = 0;
  for (const char* site : kCrashSites) {
    if (!RunGate(opts, site, reference.epochs, csv_dir)) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "\n%d of 3 crash points FAILED\n", failures);
    return 1;
  }
  std::printf("\nAll 3 crash points recovered bit-identically.\n");
  return 0;
}
