#ifndef COLT_BENCH_MICRO_JSON_MAIN_H_
#define COLT_BENCH_MICRO_JSON_MAIN_H_

/// Replacement for BENCHMARK_MAIN() in the micro benches: runs the
/// registered google-benchmark cases with the normal console output AND
/// appends each case's real time to BENCH_micro.json (schema and location:
/// see bench_json.h). Appending lets every micro binary contribute to the
/// same machine-readable file; CI starts from a fresh export directory so
/// the file holds exactly one run's records.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"

namespace colt {
namespace bench_json {

/// Console reporter that additionally captures every finished run.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(std::string bench) : bench_(std::move(bench)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Record r;
      r.bench = bench_;
      r.config = run.benchmark_name();
      r.metric = "real_time";
      r.value = run.GetAdjustedRealTime();
      r.units = benchmark::GetTimeUnitString(run.time_unit);
      records_.push_back(std::move(r));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Record>& records() const { return records_; }

 private:
  std::string bench_;
  std::vector<Record> records_;
};

inline int RunMicroBenchmarks(const std::string& bench, int argc,
                              char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter(bench);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!Write("BENCH_micro.json", reporter.records(), /*append=*/true)) {
    std::fprintf(stderr, "%s: failed to write BENCH_micro.json\n",
                 bench.c_str());
    return 1;
  }
  return 0;
}

}  // namespace bench_json
}  // namespace colt

/// Drop-in for BENCHMARK_MAIN(); `name` labels this binary's records.
/// The trailing redeclaration absorbs the caller's semicolon, exactly
/// like BENCHMARK_MAIN itself.
#define COLT_MICRO_BENCH_MAIN(name)                                  \
  int main(int argc, char** argv) {                                  \
    return colt::bench_json::RunMicroBenchmarks(name, argc, argv);   \
  }                                                                  \
  int main(int, char**)

#endif  // COLT_BENCH_MICRO_JSON_MAIN_H_
