/// Reproduces Figure 3 of the paper: COLT vs. the idealized OFFLINE
/// technique on a 500-query workload with a fixed distribution. Expected
/// shape: COLT pays monitoring + index-build overhead during roughly the
/// first 100 queries, then tracks OFFLINE within a few percent.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/timeline.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

int main(int argc, char** argv) {
  // --workers=N fans what-if probes and index builds across N pool
  // workers. Results are bit-identical for every N (DESIGN.md §10); CI
  // diffs this binary's CSVs across worker counts to prove it.
  // --cache-bytes=N sets the what-if plan cache budget (0 disables;
  // DESIGN.md §11). CI also diffs cache-on vs cache-off CSVs: neither
  // knob may change a single output byte.
  // --state-dir=DIR checkpoints tuner state there every epoch (DESIGN.md
  // §12; empty disables). Commits happen outside the tuning math, so CI
  // diffs persistence-on vs persistence-off CSVs the same way.
  // --obs-dir=DIR enables the decision-provenance recorder plus per-epoch
  // metrics snapshots and writes the live-introspection export there
  // (DESIGN.md §13: provenance.jsonl, metrics.prom, epoch_NNNN.jsonl) for
  // tools/colt_explain and tools/colt_top. Provenance is record-only, so
  // CI diffs obs-on vs obs-off CSVs like the other knobs.
  int workers = 0;
  long long cache_bytes = 8LL * 1024 * 1024;
  std::string state_dir;
  std::string obs_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--cache-bytes=", 14) == 0) {
      cache_bytes = std::atoll(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--state-dir=", 12) == 0) {
      state_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--obs-dir=", 10) == 0) {
      obs_dir = argv[i] + 10;
    }
  }

  colt::Catalog catalog = colt::MakeTpchCatalog();
  const colt::QueryDistribution dist =
      colt::ExperimentWorkloads::Focused(&catalog, 0);

  colt::WorkloadGenerator gen(&catalog, /*seed=*/1234);
  std::vector<colt::Query> workload;
  const int kQueries = 500;
  workload.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) workload.push_back(gen.Sample(dist));

  // Budget fits ~4.5 of the 18 relevant indexes (paper: "3 to 6").
  colt::QueryOptimizer probe_opt(&catalog);
  colt::OfflineTuner miner(&catalog, &probe_opt);
  auto relevant = miner.MineRelevantIndexes(workload);
  if (!relevant.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 relevant.status().ToString().c_str());
    return 1;
  }
  const int64_t budget =
      colt::BudgetForIndexes(catalog, relevant.value(), 4.0);
  std::printf("Figure 3 (stable workload): %d queries, %zu relevant indexes, "
              "budget = %.1f MB, workers = %d\n\n",
              kQueries, relevant.value().size(),
              budget / (1024.0 * 1024.0), workers);

  colt::ColtConfig config;
  config.storage_budget_bytes = budget;
  config.num_workers = workers;
  config.whatif_cache_bytes = cache_bytes;
  config.state_dir = state_dir;
  if (!obs_dir.empty()) {
    config.provenance_events = 1 << 16;
    config.epoch_metrics_snapshot = true;
    colt::MetricsRegistry::Default().set_enabled(true);
  }
  const colt::ColtRunResult colt_run =
      colt::RunColtWorkload(&catalog, workload, config);

  if (!obs_dir.empty()) {
    const colt::Status obs_status = colt::WriteObservabilityDir(
        obs_dir, colt_run, colt::MetricsRegistry::Default().Snapshot());
    if (!obs_status.ok()) {
      std::fprintf(stderr, "observability export failed: %s\n",
                   obs_status.ToString().c_str());
      return 1;
    }
    std::printf("observability export: %s (%zu provenance events)\n",
                obs_dir.c_str(), colt_run.provenance.size());
  }

  auto offline = colt::RunOfflineWorkload(&catalog, workload, workload,
                                          budget);
  if (!offline.ok()) {
    std::fprintf(stderr, "offline failed: %s\n",
                 offline.status().ToString().c_str());
    return 1;
  }

  const char* csv_env = std::getenv("COLT_CSV_DIR");
  const std::string csv_dir = csv_env != nullptr ? csv_env : "";
  colt::ColtIgnoreStatus(
      colt::MaybeWriteCsvFile(csv_dir, "fig3_per_query.csv",
                              [&](std::ostream& out) {
                                return colt::WritePerQueryCsv(
                                    colt_run, offline->per_query_seconds, out);
                              }));
  colt::ColtIgnoreStatus(
      colt::MaybeWriteCsvFile(csv_dir, "fig3_epochs.csv",
                              [&](std::ostream& out) {
                                return colt::WriteEpochReportCsv(
                                    colt_run.epochs, out);
                              }));

  const int kBucket = 50;
  colt::PrintComparisonTable(
      "Per-50-query execution time (paper Fig. 3)",
      colt::BucketTotals(colt::PerQueryTotals(colt_run), kBucket),
      colt::BucketTotals(offline->per_query_seconds, kBucket), kBucket);

  // Convergence check mirroring the paper's "negligible deviation of 1%"
  // after query 100.
  double colt_tail = 0.0, off_tail = 0.0;
  for (int i = 100; i < kQueries; ++i) {
    colt_tail += colt_run.per_query[i].total();
    off_tail += offline->per_query_seconds[i];
  }
  std::printf("\nAfter query 100: COLT/OFFLINE = %.3f (paper: ~1.01)\n",
              off_tail > 0 ? colt_tail / off_tail : 0.0);
  colt::Timeline colt_lat, off_lat;
  colt_lat.RecordAll(colt::PerQueryTotals(colt_run));
  off_lat.RecordAll(offline->per_query_seconds);
  std::printf("COLT    latency: %s\n",
              colt_lat.SummarizeRange(100, 500).ToString().c_str());
  std::printf("OFFLINE latency: %s\n",
              off_lat.SummarizeRange(100, 500).ToString().c_str());
  std::printf("OFFLINE configuration: %zu indexes, %lld configurations "
              "evaluated (exhaustive=%d)\n",
              offline->tuning.configuration.size(),
              static_cast<long long>(offline->tuning.configurations_evaluated),
              offline->tuning.exhaustive);
  std::printf("COLT final materialized: %zu indexes; distinct profiled: %lld\n",
              colt_run.final_materialized.size(),
              static_cast<long long>(colt_run.distinct_indexes_profiled));

  if (std::getenv("COLT_VERBOSE") != nullptr) {
    std::printf("\nOFFLINE chose:");
    for (colt::IndexId id : offline->tuning.configuration.ids()) {
      std::printf(" %s", catalog.index(id).name.c_str());
    }
    std::printf("\nEpoch trace:\n");
    for (const auto& e : colt_run.epochs) {
      std::printf("  ep%3d wi=%2d/%2d next=%2d r=%5.2f |C|=%lld M={",
                  e.epoch, e.whatif_used, e.whatif_limit,
                  e.next_whatif_limit, e.rebudget_ratio,
                  static_cast<long long>(e.candidate_count));
      for (colt::IndexId id : e.materialized_ids) {
        std::printf(" %s", catalog.index(id).name.c_str());
      }
      std::printf(" } H={");
      for (colt::IndexId id : e.hot_ids) {
        std::printf(" %s", catalog.index(id).name.c_str());
      }
      std::printf(" }\n");
    }
  }
  return 0;
}
