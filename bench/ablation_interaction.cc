/// Index-interaction study (paper §5): "the KNAPSACK model is not
/// completely accurate because the benefits of different indices are not
/// always independent. [...] suppose a materialized index I becomes useless
/// due to some change in the materialized set. [...] in future epochs, I
/// will be unused and its predicted benefit will converge to zero [and] it
/// will be dropped."
///
/// We engineer exactly that situation: every query carries TWO selective
/// predicates on the same large table, so the two candidate indexes are
/// near-perfect substitutes — once one is materialized, the other is
/// worthless. We then watch COLT first (over-)materialize and then correct
/// itself by dropping the redundant index.
#include <cstdio>

#include "core/colt.h"
#include "harness/experiment.h"
#include "storage/tpch_schema.h"

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const colt::TableId li = catalog.FindTable("lineitem_0");
  const colt::ColumnId shipdate =
      catalog.table(li).FindColumn("l_shipdate");
  const colt::ColumnId commitdate =
      catalog.table(li).FindColumn("l_commitdate");

  // Both predicates are similarly selective, so each index alone serves
  // the query almost equally well; together they are redundant.
  colt::QueryOptimizer optimizer(&catalog);
  colt::ColtConfig config;
  config.storage_budget_bytes = 128LL * 1024 * 1024;  // both would fit
  colt::ColtTuner tuner(&catalog, &optimizer, config);

  colt::Rng rng(77);
  const int kQueries = 1200;
  std::printf("Index-interaction study: %d queries, each with substitutable "
              "predicates on l_shipdate and l_commitdate\n\n", kQueries);
  int max_materialized = 0;
  for (int i = 0; i < kQueries; ++i) {
    const int64_t s_lo = rng.NextInRange(0, 2500);
    const int64_t c_lo = rng.NextInRange(0, 2440);
    colt::Query q({li}, {},
                  {colt::SelectionPredicate{{li, shipdate}, s_lo, s_lo + 11},
                   colt::SelectionPredicate{{li, commitdate}, c_lo,
                                            c_lo + 11}});
    const colt::TuningStep step = tuner.OnQuery(q);
    for (const auto& action : step.actions) {
      std::printf("query %4d: %-11s %s\n", i,
                  action.type == colt::IndexActionType::kMaterialize
                      ? "materialize"
                      : "drop",
                  catalog.index(action.index).name.c_str());
    }
    max_materialized = std::max(
        max_materialized, static_cast<int>(tuner.materialized().size()));
  }

  std::printf("\nPeak materialized set size: %d\n", max_materialized);
  std::printf("Final materialized set (%zu):\n", tuner.materialized().size());
  for (colt::IndexId id : tuner.materialized().ids()) {
    std::printf("  %s\n", catalog.index(id).name.c_str());
  }
  std::printf("\nExpected: the substitute index may be materialized early "
              "(the model assumes independence), but once one index serves "
              "the queries the other's measured benefit converges to zero "
              "and the epoch-by-epoch KNAPSACK re-solve drops it — COLT "
              "ends with a single lineitem index.\n");
  return tuner.materialized().size() == 1 ? 0 : 1;
}
