#ifndef COLT_BENCH_BENCH_JSON_H_
#define COLT_BENCH_BENCH_JSON_H_

/// Machine-readable bench-result emission: BENCH_*.json files holding one
/// JSON record per line with the schema
///   {"bench": ..., "config": ..., "metric": ..., "value": ..., "units": ...}
/// so CI and plotting scripts can track figures without scraping stdout.
/// Files land in $COLT_CSV_DIR when set, the working directory otherwise.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/json_util.h"

namespace colt {
namespace bench_json {

/// One measured quantity of one bench configuration.
struct Record {
  std::string bench;   // binary name, e.g. "fig5_overhead"
  std::string config;  // variant within the binary, e.g. "smoke"
  std::string metric;  // e.g. "instrumentation_overhead_pct"
  double value = 0.0;
  std::string units;  // e.g. "percent", "seconds", "ratio"
};

inline std::string Render(const std::vector<Record>& records) {
  std::string out;
  for (const Record& r : records) {
    out += "{\"bench\":";
    json::AppendString(r.bench, &out);
    out += ",\"config\":";
    json::AppendString(r.config, &out);
    out += ",\"metric\":";
    json::AppendString(r.metric, &out);
    out += ",\"value\":";
    json::AppendDouble(r.value, &out);
    out += ",\"units\":";
    json::AppendString(r.units, &out);
    out += "}\n";
  }
  return out;
}

/// Writes (or, with `append`, extends — the per-line format makes that
/// safe, which is why several micro binaries can share BENCH_micro.json)
/// the records as `name` under $COLT_CSV_DIR or the working directory.
inline bool Write(const std::string& name, const std::vector<Record>& records,
                  bool append = false) {
  const char* env = std::getenv("COLT_CSV_DIR");
  const std::string dir = env != nullptr ? env : ".";
  const std::string path = dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    // One missing directory level is the common miss ($COLT_CSV_DIR points
    // at a dir the caller never created); the fopen retry is the verdict.
    ::mkdir(dir.c_str(), 0777);
    f = std::fopen(path.c_str(), append ? "ab" : "wb");
  }
  if (f == nullptr) return false;
  const std::string text = Render(records);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace bench_json
}  // namespace colt

#endif  // COLT_BENCH_BENCH_JSON_H_
