/// Microbenchmarks for the Extended Query Optimizer: normal optimization,
/// what-if calls (the quantity COLT budgets), and the value of sub-plan
/// reuse inside what-if re-optimizations.
#include <benchmark/benchmark.h>

#include "micro_json_main.h"

#include "harness/workloads.h"
#include "optimizer/optimizer.h"
#include "storage/tpch_schema.h"

namespace colt {
namespace {

struct Fixture {
  Fixture() : catalog(MakeTpchCatalog()), gen(&catalog, 5) {
    const QueryDistribution dist =
        ExperimentWorkloads::Focused(&catalog, 0);
    for (int i = 0; i < 64; ++i) queries.push_back(gen.Sample(dist));
    for (const ColumnRef& col :
         ExperimentWorkloads::RelevantColumns(&catalog, 0)) {
      ids.push_back(catalog.IndexOn(col)->id);
    }
    for (size_t i = 0; i < 4 && i < ids.size(); ++i) config.Add(ids[i]);
  }
  Catalog catalog;
  WorkloadGenerator gen;
  std::vector<Query> queries;
  std::vector<IndexId> ids;
  IndexConfiguration config;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_OptimizeSingleTable(benchmark::State& state) {
  Fixture& f = GetFixture();
  QueryOptimizer optimizer(&f.catalog);
  size_t i = 0;
  for (auto _ : state) {
    // Skip join queries to isolate single-table planning.
    while (f.queries[i % f.queries.size()].tables().size() != 1) ++i;
    benchmark::DoNotOptimize(
        optimizer.Optimize(f.queries[i % f.queries.size()], f.config).cost);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizeSingleTable);

void BM_OptimizeJoin(benchmark::State& state) {
  Fixture& f = GetFixture();
  QueryOptimizer optimizer(&f.catalog);
  size_t i = 0;
  for (auto _ : state) {
    while (f.queries[i % f.queries.size()].tables().size() < 2) ++i;
    benchmark::DoNotOptimize(
        optimizer.Optimize(f.queries[i % f.queries.size()], f.config).cost);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizeJoin);

void BM_WhatIfCall(benchmark::State& state) {
  Fixture& f = GetFixture();
  QueryOptimizer optimizer(&f.catalog);
  const int probes = static_cast<int>(state.range(0));
  std::vector<IndexId> probation(f.ids.begin(), f.ids.begin() + probes);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimizer
            .WhatIfOptimize(f.queries[i % f.queries.size()], f.config,
                            probation)
            .size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * probes);
}
BENCHMARK(BM_WhatIfCall)->Arg(1)->Arg(4)->Arg(8);

void BM_CrudeGain(benchmark::State& state) {
  Fixture& f = GetFixture();
  QueryOptimizer optimizer(&f.catalog);
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.queries[i % f.queries.size()];
    double total = 0;
    for (const auto& pred : q.selections()) {
      auto desc = f.catalog.IndexOn(pred.column);
      total += optimizer.CrudeGain(pred, *desc);
    }
    benchmark::DoNotOptimize(total);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CrudeGain);

}  // namespace
}  // namespace colt

COLT_MICRO_BENCH_MAIN("micro_optimizer");
