/// Three-way comparison on the shifting workload: COLT vs. REACTIVE (an
/// unregulated prior-work-style tuner, §1's "no explicit mechanism to
/// regulate the issuance of what-if calls") vs. the idealized OFFLINE.
/// The point the paper makes: controllable overhead, not raw adaptivity,
/// is what makes on-line tuning deployable.
#include <cstdio>

#include "baseline/reactive_tuner.h"
#include "harness/experiment.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const auto dists = colt::ExperimentWorkloads::ShiftingPhases(&catalog);
  std::vector<colt::WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 300});
  colt::WorkloadGenerator gen(&catalog, 99);
  const std::vector<colt::Query> workload =
      colt::GeneratePhasedWorkload(gen, phases, 50);

  colt::QueryOptimizer probe(&catalog);
  colt::OfflineTuner miner(&catalog, &probe);
  colt::WorkloadGenerator sample_gen(&catalog, 1234);
  std::vector<colt::Query> sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) sample.push_back(sample_gen.Sample(d));
  }
  const int64_t budget = colt::BudgetForIndexes(
      catalog, miner.MineRelevantIndexes(sample).value(), 4.0);

  std::printf("Baseline comparison on the shifting workload (%zu queries, "
              "budget %.1f MB)\n\n", workload.size(),
              budget / (1024.0 * 1024.0));
  std::printf("%-10s %10s %12s %10s %10s %9s\n", "tuner", "exec(s)",
              "overhead(s)", "total(s)", "what-ifs", "builds");

  // COLT.
  {
    colt::ColtConfig config;
    config.storage_budget_bytes = budget;
    const colt::ColtRunResult run =
        colt::RunColtWorkload(&catalog, workload, config);
    double exec = 0, overhead = 0;
    int builds = 0;
    for (const auto& q : run.per_query) {
      exec += q.execution;
      overhead += q.profiling + q.build;
      builds += q.build > 0 ? 1 : 0;
    }
    int64_t whatifs = 0;
    for (const auto& e : run.epochs) whatifs += e.whatif_used;
    std::printf("%-10s %10.1f %12.1f %10.1f %10lld %9d\n", "COLT", exec,
                overhead, exec + overhead, static_cast<long long>(whatifs),
                builds);
  }

  // REACTIVE.
  {
    colt::QueryOptimizer optimizer(&catalog);
    colt::ReactiveTuner::Options options;
    options.storage_budget_bytes = budget;
    colt::ReactiveTuner tuner(&catalog, &optimizer, options);
    double exec = 0, overhead = 0;
    int builds = 0;
    for (const auto& q : workload) {
      const colt::ReactiveStep step = tuner.OnQuery(q);
      exec += step.execution_seconds;
      overhead += step.profiling_seconds + step.build_seconds;
      builds += step.build_seconds > 0 ? 1 : 0;
    }
    std::printf("%-10s %10.1f %12.1f %10.1f %10lld %9d\n", "REACTIVE",
                exec, overhead, exec + overhead,
                static_cast<long long>(tuner.total_whatif_calls()), builds);
  }

  // OFFLINE (clairvoyant; zero overhead by definition).
  {
    auto offline =
        colt::RunOfflineWorkload(&catalog, workload, workload, budget);
    if (!offline.ok()) {
      std::fprintf(stderr, "%s\n", offline.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %10.1f %12.1f %10.1f %10d %9zu\n", "OFFLINE",
                offline->total_seconds, 0.0, offline->total_seconds, 0,
                offline->tuning.configuration.size());
  }

  std::printf("\nExpected: REACTIVE adapts too (both on-line tuners beat "
              "OFFLINE's execution time on shifting workloads), but burns "
              "an order of magnitude more what-if calls and churns more "
              "builds — the paper's case for COLT's explicit overhead "
              "control.\n");
  return 0;
}
