/// HTAP write-workload experiment (DESIGN.md §16, beyond the paper): a
/// 3-phase workload over one schema instance whose read/write ratio flips
/// mid-run. Phase 0 is read-heavy lineitem analytics (indexes on
/// l_shipdate/l_partkey earn their keep); phase 1 hammers those same
/// columns with INSERT/UPDATE traffic while reads move to orders/customer;
/// phase 2 returns to the phase-0 mix. With maintenance charging on
/// (ColtConfig::charge_index_maintenance, the default) the Self-Organizer
/// folds each epoch's per-index maintenance cost into the gain statistics,
/// so the write-hot lineitem indexes' net benefit goes negative and COLT
/// drops them; the maintenance-blind ablation (charging off) keeps paying
/// write amplification on indexes that no longer pay for themselves.
///
/// Gates (exit non-zero on failure; CI greps the `=` lines):
///   dropped_write_hot_index=<name>  — a lineitem index materialized in the
///     read-heavy prefix is dropped once the write phase is in force, in
///     an epoch that actually charged maintenance.
///   maintenance_charge_advantage=ok — the charged run's total simulated
///     seconds (execution + tuning overheads; write execution always
///     includes maintenance page costs, in both runs) beat the blind run.
///   hotspot_run=ok — the leanstore-style hot-spot write scenario (1% hot
///     keys, composite-key read shape) completes with writes recorded.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace {

colt::ColumnRef Col(colt::Catalog* catalog, const std::string& table,
                    const std::string& column) {
  const colt::TableId t = catalog->FindTable(table);
  const colt::ColumnId c = catalog->table(t).FindColumn(column);
  return colt::ColumnRef{t, c};
}

double RunTotal(const colt::ColtRunResult& run) {
  double total = 0.0;
  for (const auto& q : run.per_query) total += q.total();
  return total;
}

double ChargedTotal(const colt::ColtRunResult& run) {
  double total = 0.0;
  for (const auto& e : run.epochs) total += e.maintenance_charged;
  return total;
}

int64_t WriteQueries(const colt::ColtRunResult& run) {
  int64_t total = 0;
  for (const auto& e : run.epochs) total += e.write_queries;
  return total;
}

bool Contains(const std::vector<colt::IndexId>& ids, colt::IndexId id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool debug = false;
  int workers = 0;
  long long cache_bytes = 8LL * 1024 * 1024;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--debug") == 0) {
      debug = true;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--cache-bytes=", 14) == 0) {
      cache_bytes = std::atoll(argv[i] + 14);
    }
  }

  colt::Catalog catalog = colt::MakeTpchCatalog();
  const std::vector<colt::QueryDistribution> dists =
      colt::ExperimentWorkloads::HtapPhases(&catalog);

  // The write phase runs three times as long as the read phases: the
  // forecaster needs ~history_depth epochs of write pressure before the
  // phase-0 benefit history washes out and the forecast sinks, and the
  // drop only pays off in the epochs that follow; the read phases only
  // need enough run to show (re-)adoption.
  const int phase_len = smoke ? 100 : 300;
  const int transition = smoke ? 20 : 50;
  std::vector<colt::WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, phase_len});
  phases[1].length = 3 * phase_len;

  colt::WorkloadGenerator gen(&catalog, /*seed=*/77);
  std::vector<int> phase_of_query;
  const std::vector<colt::Query> workload = colt::GeneratePhasedWorkload(
      gen, phases, transition, &phase_of_query);
  int64_t write_count = 0;
  for (const auto& q : workload) write_count += q.is_write() ? 1 : 0;
  std::printf("HTAP experiment: %zu queries (%lld writes), phases "
              "%d/%d/%d + 2 x %d transitions\n\n",
              workload.size(), static_cast<long long>(write_count),
              phases[0].length, phases[1].length, phases[2].length,
              transition);

  // Budget sized like the shifting experiment, against the union of the
  // phases' read shapes (the miner reasons about SELECT plans; the write
  // templates' maintenance pressure is what the run itself measures).
  colt::QueryOptimizer probe_opt(&catalog);
  colt::OfflineTuner miner(&catalog, &probe_opt);
  colt::WorkloadGenerator mine_gen(&catalog, 1234);
  std::vector<colt::Query> read_sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) {
      colt::Query q = mine_gen.Sample(d);
      if (!q.is_write()) read_sample.push_back(std::move(q));
    }
  }
  auto relevant = miner.MineRelevantIndexes(read_sample);
  if (!relevant.ok()) {
    std::fprintf(stderr, "%s\n", relevant.status().ToString().c_str());
    return 1;
  }
  const int64_t budget =
      colt::BudgetForIndexes(catalog, relevant.value(), 4.0);

  colt::ColtConfig config;
  config.storage_budget_bytes = budget;
  config.num_workers = workers;
  config.whatif_cache_bytes = cache_bytes;
  config.charge_index_maintenance = true;  // the default, stated for clarity
  if (debug) config.provenance_events = 1 << 16;
  const colt::ColtRunResult charged =
      colt::RunColtWorkload(&catalog, workload, config);

  if (debug) {
    // Per-epoch benefit-vs-charge trace for the write-hot lineitem
    // indexes, straight from the flight recorder (DESIGN.md §13).
    for (const auto& e : charged.provenance) {
      if (e.name == "self_organizer.maintenance_charge") {
        const auto* b = e.FindAttr("benefit");
        const auto* c = e.FindAttr("charge");
        std::printf("debug epoch %lld index %lld benefit %.1f charge %.1f\n",
                    static_cast<long long>(e.epoch),
                    static_cast<long long>(e.index),
                    b != nullptr ? b->double_value : 0.0,
                    c != nullptr ? c->double_value : 0.0);
      }
      if (e.name == "self_organizer.schedule_drop" ||
          e.name == "self_organizer.schedule_install") {
        const auto* nb = e.FindAttr("net_benefit");
        std::printf("debug epoch %lld %s index %lld net %.1f\n",
                    static_cast<long long>(e.epoch), e.name.c_str(),
                    static_cast<long long>(e.index),
                    nb != nullptr ? nb->double_value : 0.0);
      }
    }
  }

  colt::ColtConfig blind_config = config;
  blind_config.charge_index_maintenance = false;  // maintenance-blind ablation
  const colt::ColtRunResult blind =
      colt::RunColtWorkload(&catalog, workload, blind_config);

  const char* csv_env = std::getenv("COLT_CSV_DIR");
  const std::string csv_dir = csv_env != nullptr ? csv_env : "";
  colt::ColtIgnoreStatus(colt::MaybeWriteCsvFile(
      csv_dir, "fig_htap_epochs.csv", [&](std::ostream& out) {
        return colt::WriteEpochReportCsv(charged.epochs, out);
      }));
  colt::ColtIgnoreStatus(colt::MaybeWriteCsvFile(
      csv_dir, "fig_htap_per_query.csv", [&](std::ostream& out) {
        return colt::WritePerQueryCsv(charged, {}, out);
      }));

  // Per-phase totals, charged vs maintenance-blind. Both runs price write
  // maintenance into execution (OptimizeWrite always does); they differ
  // only in whether the tuner *knows* about it when picking indexes.
  const int num_phases = static_cast<int>(dists.size());
  std::vector<double> phase_charged(num_phases, 0.0);
  std::vector<double> phase_blind(num_phases, 0.0);
  for (size_t i = 0; i < workload.size(); ++i) {
    phase_charged[phase_of_query[i]] += charged.per_query[i].total();
    phase_blind[phase_of_query[i]] += blind.per_query[i].total();
  }
  std::printf("Per-phase totals (charged vs maintenance-blind):\n");
  for (int p = 0; p < num_phases; ++p) {
    std::printf("  phase %d (%s): charged %8.1f s, blind %8.1f s\n", p,
                dists[p].name.c_str(), phase_charged[p], phase_blind[p]);
  }
  if (debug) {
    auto split = [&](const char* tag, const colt::ColtRunResult& run) {
      std::vector<double> exec(num_phases, 0.0), prof(num_phases, 0.0),
          build(num_phases, 0.0), maint(num_phases, 0.0);
      for (size_t i = 0; i < workload.size(); ++i) {
        const auto& q = run.per_query[i];
        exec[phase_of_query[i]] += q.execution;
        prof[phase_of_query[i]] += q.profiling;
        build[phase_of_query[i]] += q.build + q.wasted_build;
        maint[phase_of_query[i]] += q.maintenance;
      }
      for (int p = 0; p < num_phases; ++p) {
        std::printf("debug %s phase %d exec %.1f (maint %.1f) prof %.1f "
                    "build %.1f\n",
                    tag, p, exec[p], maint[p], prof[p], build[p]);
      }
    };
    split("charged", charged);
    split("blind", blind);
  }
  const double charged_total = RunTotal(charged);
  const double blind_total = RunTotal(blind);
  std::printf("\ncharged_total_s=%.3f\n", charged_total);
  std::printf("blind_total_s=%.3f\n", blind_total);
  // The tuner-side charge is in optimizer cost units (it offsets benefit
  // in the gain statistics), unlike the simulated-seconds totals above.
  std::printf("maintenance_charged_units=%.3f\n", ChargedTotal(charged));
  std::printf("write_queries=%lld\n",
              static_cast<long long>(WriteQueries(charged)));

  int failures = 0;

  // Gate: the knob actually gates — the charged run folded a non-zero
  // maintenance charge into the gain statistics, the blind run none.
  if (ChargedTotal(charged) <= 0.0) {
    std::printf("FAIL: charged run recorded no maintenance charge\n");
    ++failures;
  }
  if (ChargedTotal(blind) != 0.0) {
    std::printf("FAIL: maintenance-blind run charged maintenance\n");
    ++failures;
  }

  // Gate: a write-hot lineitem index is adopted while reads dominate and
  // dropped once the write phase makes it a net loss. The drop epoch must
  // itself have charged maintenance (i.e. writes were in force).
  const std::vector<colt::IndexId> write_hot = {
      catalog.IndexOn(Col(&catalog, "lineitem_0", "l_shipdate"))->id,
      catalog.IndexOn(Col(&catalog, "lineitem_0", "l_partkey"))->id,
  };
  std::string dropped_name;
  for (colt::IndexId id : write_hot) {
    int adopted_epoch = -1;
    for (const auto& e : charged.epochs) {
      const bool mat = Contains(e.materialized_ids, id);
      if (mat && adopted_epoch < 0) adopted_epoch = e.epoch;
      if (!mat && adopted_epoch >= 0 &&
          (e.maintenance_charged > 0.0 || e.write_queries > 0)) {
        dropped_name = catalog.index(id).name;
        std::printf("index %s: adopted at epoch %d, dropped by epoch %d\n",
                    dropped_name.c_str(), adopted_epoch, e.epoch);
        break;
      }
    }
    if (!dropped_name.empty()) break;
  }
  if (dropped_name.empty()) {
    std::printf("FAIL: no write-hot lineitem index was dropped under "
                "write pressure\n");
    ++failures;
  } else {
    std::printf("dropped_write_hot_index=%s\n", dropped_name.c_str());
  }

  // Gate: knowing about maintenance must not cost total performance. The
  // margin can be modest (the blind tuner also sheds lineitem indexes
  // eventually, as their read benefit fades), but the sign must be right.
  if (charged_total < blind_total) {
    std::printf("maintenance_charge_advantage=ok\n");
  } else {
    std::printf("FAIL: charged run (%.3f s) not cheaper than "
                "maintenance-blind run (%.3f s)\n",
                charged_total, blind_total);
    ++failures;
  }

  // Leanstore-style hot-spot scenario: UPDATE/DELETE ranges confined to
  // the hottest 1% of the key domain against a composite-key read shape.
  // Exercises skewed maintenance pressure + the multi-column miner.
  {
    const colt::QueryDistribution hot =
        colt::ExperimentWorkloads::HotSpotWrites(&catalog);
    colt::WorkloadGenerator hot_gen(&catalog, /*seed=*/41);
    std::vector<colt::Query> hot_workload;
    const int hot_len = smoke ? 150 : 400;
    for (int i = 0; i < hot_len; ++i) {
      hot_workload.push_back(hot_gen.Sample(hot));
    }
    colt::ColtConfig hot_config = config;
    hot_config.mine_multicolumn_candidates = true;
    const colt::ColtRunResult hot_run =
        colt::RunColtWorkload(&catalog, hot_workload, hot_config);
    const int64_t hot_writes = WriteQueries(hot_run);
    std::printf("\nhot-spot scenario: %d queries, %lld writes, "
                "maintenance charged %.3f cost units\n",
                hot_len, static_cast<long long>(hot_writes),
                ChargedTotal(hot_run));
    if (hot_writes > 0 && ChargedTotal(hot_run) > 0.0) {
      std::printf("hotspot_run=ok\n");
    } else {
      std::printf("FAIL: hot-spot scenario recorded no write pressure\n");
      ++failures;
    }
  }

  if (failures > 0) {
    std::printf("\n%d gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
