/// Concurrent-serving throughput bench (DESIGN.md §15): N pinned client
/// threads drain a query trace through the executor against real B+-trees
/// while COLT tunes on the owner thread.
///
/// Two phases:
///   1. "tuned_serving": 4 clients serve a focused workload while the
///      tuner installs indexes online — demonstrates that configuration
///      changes publish mid-flight without blocking readers.
///   2. "threads_N": the same trace re-served under the frozen tuned
///      configuration at each thread count, reporting aggregate qps and
///      p50/p95/p99 tail latency; the scaling summary compares the
///      largest thread count against 1.
///
/// Results land in BENCH_serve.json ($COLT_CSV_DIR or the working dir).
/// With --smoke the scale, trace, and thread ladder shrink to CI size.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/thread_pool.h"
#include "core/colt.h"
#include "core/serve.h"
#include "harness/workloads.h"
#include "query/workload.h"
#include "storage/tpch_schema.h"

namespace {

int FailedQueries(const colt::ServeResult& result) {
  int failed = 0;
  for (const auto& q : result.queries) {
    if (!q.ok) {
      if (failed == 0) {
        std::fprintf(stderr, "query %lld failed: %s\n",
                     static_cast<long long>(q.trace_index), q.error.c_str());
      }
      ++failed;
    }
  }
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // A reduced-scale physical TPC-H instance: real tuples, real B+-trees.
  colt::TpchOptions options;
  options.instances = 1;
  options.scale = smoke ? 0.005 : 0.02;
  colt::Database db(colt::MakeTpchCatalog(options), /*seed=*/42);
  if (auto st = db.MaterializeAll(/*refresh_stats=*/true); !st.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n", st.ToString().c_str());
    return 1;
  }

  colt::QueryOptimizer optimizer(&db.catalog());
  const colt::QueryDistribution dist =
      colt::ExperimentWorkloads::Focused(&db.mutable_catalog(), 0);
  colt::WorkloadGenerator gen(&db.catalog(), 11);
  const int trace_queries = smoke ? 120 : 400;
  std::vector<colt::Query> trace;
  trace.reserve(static_cast<size_t>(trace_queries));
  for (int i = 0; i < trace_queries; ++i) trace.push_back(gen.Sample(dist));

  const int cores = colt::ThreadPool::HardwareConcurrency();
  std::printf("serve_throughput%s: %d queries, TPC-H scale %.3f, %d cores\n",
              smoke ? " [smoke]" : "", trace_queries, options.scale, cores);

  std::vector<colt::bench_json::Record> records;
  auto record = [&records](const std::string& config,
                           const std::string& metric, double value,
                           const std::string& units) {
    records.push_back({"serve_throughput", config, metric, value, units});
  };
  record("hardware", "cores", cores, "count");

  // ---- Phase 1: serve while COLT tunes online. --------------------------
  colt::ColtConfig config;
  config.storage_budget_bytes = 8LL * 1024 * 1024;
  colt::ColtTuner tuner(&db.mutable_catalog(), &optimizer, config, &db);
  colt::ServeOptions tuned_opts;
  tuned_opts.client_threads = smoke ? 2 : 4;
  const colt::ServeResult tuned =
      colt::ServeWorkload(&db, &optimizer, &tuner, trace, tuned_opts);
  const int tuned_failed = FailedQueries(tuned);
  std::printf(
      "tuned serving: %d clients, %.0f qps, %lld online index actions, "
      "%d epochs, p99 %.3f ms, %d failed\n",
      tuned_opts.client_threads, tuned.aggregate_qps,
      static_cast<long long>(tuned.tuner_actions), tuned.epochs,
      1e3 * colt::LatencyPercentile(tuned.queries, 99.0), tuned_failed);
  // Machine-greppable line for the CI smoke gate.
  std::printf("tuner_actions_during_serving=%lld\n",
              static_cast<long long>(tuned.tuner_actions));
  record("tuned_serving", "aggregate_qps", tuned.aggregate_qps, "qps");
  record("tuned_serving", "tuner_actions_during_serving",
         static_cast<double>(tuned.tuner_actions), "count");
  record("tuned_serving", "p99_latency_seconds",
         colt::LatencyPercentile(tuned.queries, 99.0), "seconds");

  // ---- Phase 2: frozen-configuration read scaling. ----------------------
  std::vector<int> thread_counts = smoke ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 2, 4, 8};
  double qps_at_1 = 0.0;
  double qps_at_max = 0.0;
  int total_failed = tuned_failed;
  for (int threads : thread_counts) {
    colt::ServeOptions opts;
    opts.client_threads = threads;
    const colt::ServeResult run =
        colt::ServeWorkload(&db, &optimizer, /*tuner=*/nullptr, trace, opts);
    total_failed += FailedQueries(run);
    const double p50 = colt::LatencyPercentile(run.queries, 50.0);
    const double p95 = colt::LatencyPercentile(run.queries, 95.0);
    const double p99 = colt::LatencyPercentile(run.queries, 99.0);
    std::printf(
        "threads %2d: %8.0f qps   p50 %7.3f ms   p95 %7.3f ms   "
        "p99 %7.3f ms\n",
        threads, run.aggregate_qps, 1e3 * p50, 1e3 * p95, 1e3 * p99);
    const std::string cfg = "threads_" + std::to_string(threads);
    record(cfg, "aggregate_qps", run.aggregate_qps, "qps");
    record(cfg, "p50_latency_seconds", p50, "seconds");
    record(cfg, "p95_latency_seconds", p95, "seconds");
    record(cfg, "p99_latency_seconds", p99, "seconds");
    if (threads == 1) qps_at_1 = run.aggregate_qps;
    qps_at_max = run.aggregate_qps;
  }
  const double speedup = qps_at_1 > 0.0 ? qps_at_max / qps_at_1 : 0.0;
  std::printf("scaling: %.2fx aggregate qps at %d threads vs 1\n", speedup,
              thread_counts.back());
  record("scaling", "speedup_max_vs_1", speedup, "ratio");
  record("scaling", "max_threads", thread_counts.back(), "count");

  if (!colt::bench_json::Write("BENCH_serve.json", records)) {
    std::fprintf(stderr, "failed to write BENCH_serve.json\n");
    return 1;
  }
  if (total_failed > 0) {
    std::fprintf(stderr, "%d queries failed\n", total_failed);
    return 1;
  }
  return 0;
}
