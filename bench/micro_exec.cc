/// Microbenchmarks for the physical execution engine (reduced-scale data).
#include <benchmark/benchmark.h>

#include "micro_json_main.h"

#include "common/status.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "storage/tpch_schema.h"

namespace colt {
namespace {

struct Fixture {
  Fixture() : db(MakeCatalog(), 7) {
    ColtIgnoreStatus(db.MaterializeAll(/*refresh_stats=*/true));
    li = db.catalog().FindTable("lineitem_0");
    shipdate = db.catalog().table(li).FindColumn("l_shipdate");
    auto desc = db.mutable_catalog().IndexOn(ColumnRef{li, shipdate});
    index_id = desc->id;
    ColtIgnoreStatus(db.BuildIndex(index_id));
  }
  static Catalog MakeCatalog() {
    TpchOptions options;
    options.instances = 1;
    options.scale = 0.05;
    return MakeTpchCatalog(options);
  }
  Database db;
  TableId li = kInvalidTableId;
  ColumnId shipdate = kInvalidColumnId;
  IndexId index_id = kInvalidIndexId;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_ExecSeqScan(benchmark::State& state) {
  Fixture& f = GetFixture();
  QueryOptimizer optimizer(&f.db.catalog());
  Executor executor(&f.db);
  Query q({f.li}, {},
          {SelectionPredicate{{f.li, f.shipdate}, 100, 160}});
  const PlanResult plan = optimizer.Optimize(q, {});
  for (auto _ : state) {
    auto result = executor.Execute(*plan.plan);
    benchmark::DoNotOptimize(result->output_rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          f.db.catalog().table(f.li).row_count());
}
BENCHMARK(BM_ExecSeqScan);

void BM_ExecIndexScan(benchmark::State& state) {
  Fixture& f = GetFixture();
  QueryOptimizer optimizer(&f.db.catalog());
  Executor executor(&f.db);
  Query q({f.li}, {},
          {SelectionPredicate{{f.li, f.shipdate}, 100, 110}});
  IndexConfiguration config;
  config.Add(f.index_id);
  const PlanResult plan = optimizer.Optimize(q, config);
  for (auto _ : state) {
    auto result = executor.Execute(*plan.plan);
    benchmark::DoNotOptimize(result->output_rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecIndexScan);

void BM_ExecHashJoin(benchmark::State& state) {
  Fixture& f = GetFixture();
  QueryOptimizer optimizer(&f.db.catalog());
  Executor executor(&f.db);
  const TableId od = f.db.catalog().FindTable("orders_0");
  const ColumnId okey = f.db.catalog().table(od).FindColumn("o_orderkey");
  const ColumnId odate = f.db.catalog().table(od).FindColumn("o_orderdate");
  const ColumnId lokey =
      f.db.catalog().table(f.li).FindColumn("l_orderkey");
  Query q({od, f.li}, {JoinPredicate{{od, okey}, {f.li, lokey}}},
          {SelectionPredicate{{od, odate}, 0, 30}});
  const PlanResult plan = optimizer.Optimize(q, {});
  for (auto _ : state) {
    auto result = executor.Execute(*plan.plan);
    benchmark::DoNotOptimize(result->output_rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecHashJoin);

}  // namespace
}  // namespace colt

COLT_MICRO_BENCH_MAIN("micro_exec");
