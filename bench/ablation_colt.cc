/// Ablation study over COLT's design choices (DESIGN.md §4): each variant
/// disables one mechanism and re-runs the shifting-workload experiment.
/// Reported: total time (execution + overhead), what-if calls, and index
/// builds — so the contribution of every mechanism is visible.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace {

struct Variant {
  std::string name;
  colt::ColtConfig config;
};

}  // namespace

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const auto dists = colt::ExperimentWorkloads::ShiftingPhases(&catalog);
  std::vector<colt::WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 300});
  colt::WorkloadGenerator gen(&catalog, 99);
  const std::vector<colt::Query> workload =
      colt::GeneratePhasedWorkload(gen, phases, 50);

  colt::QueryOptimizer probe(&catalog);
  colt::OfflineTuner miner(&catalog, &probe);
  colt::WorkloadGenerator sample_gen(&catalog, 1234);
  std::vector<colt::Query> sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) sample.push_back(sample_gen.Sample(d));
  }
  const int64_t budget =
      colt::BudgetForIndexes(catalog, miner.MineRelevantIndexes(sample).value(),
                             4.0);

  colt::ColtConfig base;
  base.storage_budget_bytes = budget;

  std::vector<Variant> variants;
  variants.push_back({"paper-default", base});
  {
    auto c = base;
    c.enable_rebudgeting = false;  // profiling always at #WI_max
    variants.push_back({"no-rebudgeting", c});
  }
  {
    auto c = base;
    c.enable_adaptive_sampling = false;  // uniform sampling probability
    variants.push_back({"uniform-sampling", c});
  }
  {
    auto c = base;
    c.conservative_estimates = false;  // interval midpoint, not LowGain
    variants.push_back({"mean-estimates", c});
  }
  {
    auto c = base;
    c.fill_hot_by_density = false;  // strict two-means top cluster only
    variants.push_back({"no-density-fill", c});
  }
  {
    auto c = base;
    c.use_greedy_knapsack = true;
    variants.push_back({"greedy-knapsack", c});
  }
  {
    auto c = base;
    c.history_depth = 6;
    variants.push_back({"short-memory-h6", c});
  }
  {
    auto c = base;
    c.history_depth = 24;
    variants.push_back({"long-memory-h24", c});
  }
  {
    auto c = base;
    c.scheduling_strategy = colt::SchedulingStrategy::kIdleTime;
    c.idle_seconds_per_query = 2.0;
    variants.push_back({"idle-builds-2s", c});
  }
  {
    auto c = base;
    c.scheduling_strategy = colt::SchedulingStrategy::kIdleTime;
    c.idle_seconds_per_query = 20.0;
    variants.push_back({"idle-builds-20s", c});
  }

  std::printf("Ablation on the shifting workload (%zu queries, budget "
              "%.1f MB)\n\n",
              workload.size(), budget / (1024.0 * 1024.0));
  std::printf("%-18s %10s %10s %10s %8s %7s\n", "variant", "exec(s)",
              "profile(s)", "build(s)", "what-ifs", "builds");
  for (const auto& variant : variants) {
    const colt::ColtRunResult run =
        colt::RunColtWorkload(&catalog, workload, variant.config);
    double exec = 0, profile = 0, build = 0;
    int builds = 0;
    for (const auto& q : run.per_query) {
      exec += q.execution;
      profile += q.profiling;
      build += q.build;
      builds += q.build > 0 ? 1 : 0;
    }
    int64_t whatifs = 0;
    for (const auto& e : run.epochs) whatifs += e.whatif_used;
    std::printf("%-18s %10.1f %10.1f %10.1f %8lld %7d\n",
                variant.name.c_str(), exec, profile, build,
                static_cast<long long>(whatifs), builds);
  }
  std::printf("\nExpected: no-rebudgeting matches execution time but burns "
              "far more what-if calls; uniform sampling profiles less "
              "precisely; mean estimates materialize more eagerly.\n");
  return 0;
}
