/// Reproduces Figure 4 of the paper: COLT vs. OFFLINE on a shifting
/// workload — 4 phases of 300 queries from different distributions with
/// gradual 50-query transitions (1350 queries total). Expected shape: COLT
/// outperforms OFFLINE for the majority of queries (paper: 33% lower total
/// execution time, 49% lower in phase 2), because OFFLINE must pick one
/// configuration that is only good on average.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

int main(int argc, char** argv) {
  // --workers= / --cache-bytes= mirror fig3_stable: neither may change a
  // single output byte (DESIGN.md §10/§11). --obs-dir=DIR enables the
  // decision-provenance recorder and writes the introspection export
  // there (DESIGN.md §13); the determinism test diffs provenance.jsonl
  // across worker counts and cache settings on exactly this workload.
  int workers = 0;
  long long cache_bytes = 8LL * 1024 * 1024;
  std::string obs_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--cache-bytes=", 14) == 0) {
      cache_bytes = std::atoll(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--obs-dir=", 10) == 0) {
      obs_dir = argv[i] + 10;
    }
  }

  colt::Catalog catalog = colt::MakeTpchCatalog();
  const std::vector<colt::QueryDistribution> dists =
      colt::ExperimentWorkloads::ShiftingPhases(&catalog);

  std::vector<colt::WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 300});

  colt::WorkloadGenerator gen(&catalog, /*seed=*/99);
  std::vector<int> phase_of_query;
  const std::vector<colt::Query> workload =
      colt::GeneratePhasedWorkload(gen, phases, /*transition_length=*/50,
                                   &phase_of_query);
  std::printf("Figure 4 (shifting workload): %zu queries, 4 phases x 300 + "
              "3 x 50 transitions\n\n", workload.size());

  // Budget identical to the stable experiment (paper: "the disk budget and
  // total number of relevant indices are the same as the previous
  // experiment") — sized against one phase's relevant set.
  colt::QueryOptimizer probe_opt(&catalog);
  colt::OfflineTuner miner(&catalog, &probe_opt);
  colt::WorkloadGenerator phase_gen(&catalog, 1234);
  std::vector<colt::Query> mixed_sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) mixed_sample.push_back(phase_gen.Sample(d));
  }
  auto relevant = miner.MineRelevantIndexes(mixed_sample);
  if (!relevant.ok()) {
    std::fprintf(stderr, "%s\n", relevant.status().ToString().c_str());
    return 1;
  }
  const int64_t budget = colt::BudgetForIndexes(catalog, relevant.value(), 4.0);

  colt::ColtConfig config;
  config.storage_budget_bytes = budget;
  config.num_workers = workers;
  config.whatif_cache_bytes = cache_bytes;
  if (!obs_dir.empty()) {
    config.provenance_events = 1 << 16;
    config.epoch_metrics_snapshot = true;
    colt::MetricsRegistry::Default().set_enabled(true);
  }
  const colt::ColtRunResult colt_run =
      colt::RunColtWorkload(&catalog, workload, config);

  if (!obs_dir.empty()) {
    const colt::Status obs_status = colt::WriteObservabilityDir(
        obs_dir, colt_run, colt::MetricsRegistry::Default().Snapshot());
    if (!obs_status.ok()) {
      std::fprintf(stderr, "observability export failed: %s\n",
                   obs_status.ToString().c_str());
      return 1;
    }
    std::printf("observability export: %s (%zu provenance events)\n",
                obs_dir.c_str(), colt_run.provenance.size());
  }

  auto offline =
      colt::RunOfflineWorkload(&catalog, workload, workload, budget);
  if (!offline.ok()) {
    std::fprintf(stderr, "%s\n", offline.status().ToString().c_str());
    return 1;
  }

  const int kBucket = 50;
  colt::PrintComparisonTable(
      "Per-50-query execution time (paper Fig. 4)",
      colt::BucketTotals(colt::PerQueryTotals(colt_run), kBucket),
      colt::BucketTotals(offline->per_query_seconds, kBucket), kBucket);

  // Per-phase totals and the paper's headline ratios.
  double phase_colt[4] = {0, 0, 0, 0};
  double phase_off[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < workload.size(); ++i) {
    const int p = phase_of_query[i];
    phase_colt[p] += colt_run.per_query[i].total();
    phase_off[p] += offline->per_query_seconds[i];
  }
  std::printf("\nPer-phase totals:\n");
  double total_c = 0, total_o = 0;
  for (int p = 0; p < 4; ++p) {
    total_c += phase_colt[p];
    total_o += phase_off[p];
    std::printf("  phase %d: COLT %8.1f s, OFFLINE %8.1f s  "
                "(reduction %5.1f%%)\n",
                p + 1, phase_colt[p], phase_off[p],
                100.0 * (1.0 - phase_colt[p] / phase_off[p]));
  }
  std::printf("  overall: COLT %8.1f s, OFFLINE %8.1f s  (reduction %5.1f%%;"
              " paper: 33%%, phase 2: 49%%)\n",
              total_c, total_o, 100.0 * (1.0 - total_c / total_o));
  std::printf("\nOFFLINE chose:");
  for (colt::IndexId id : offline->tuning.configuration.ids()) {
    std::printf(" %s", catalog.index(id).name.c_str());
  }
  std::printf("\nDistinct indexes profiled by COLT: %lld\n",
              static_cast<long long>(colt_run.distinct_indexes_profiled));
  return 0;
}
