/// Microbenchmarks for the COLT core: per-query tuner overhead (the cost of
/// monitoring itself), knapsack solves, clustering assignment, and the
/// observability primitives the pipeline is instrumented with.
#include <benchmark/benchmark.h>

#include "micro_json_main.h"

#include "common/metrics.h"
#include "core/colt.h"
#include "core/knapsack.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace colt {
namespace {

void BM_ColtOnQuery(benchmark::State& state) {
  static Catalog* catalog = new Catalog(MakeTpchCatalog());
  QueryOptimizer optimizer(catalog);
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  ColtTuner tuner(catalog, &optimizer, config);
  const QueryDistribution dist = ExperimentWorkloads::Focused(catalog, 0);
  WorkloadGenerator gen(catalog, 3);
  std::vector<Query> queries;
  for (int i = 0; i < 256; ++i) queries.push_back(gen.Sample(dist));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tuner.OnQuery(queries[i % queries.size()]).execution_seconds);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColtOnQuery);

void BM_KnapsackDp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(9);
  std::vector<KnapsackItem> items;
  int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t size = 1 + static_cast<int64_t>(rng.NextBelow(64 << 20));
    total += size;
    items.push_back({i, size, static_cast<double>(rng.NextBelow(100000))});
  }
  const int64_t capacity = total / 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveKnapsack(items, capacity).total_value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnapsackDp)->Arg(8)->Arg(32)->Arg(128);

void BM_ClusterAssign(benchmark::State& state) {
  static Catalog* catalog = new Catalog(MakeTpchCatalog());
  ClusterManager clusters(catalog, 12);
  const QueryDistribution dist = ExperimentWorkloads::Focused(catalog, 0);
  WorkloadGenerator gen(catalog, 3);
  std::vector<Query> queries;
  for (int i = 0; i < 256; ++i) queries.push_back(gen.Sample(dist));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clusters.Assign(queries[i % queries.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterAssign);

void BM_SignatureCompute(benchmark::State& state) {
  static Catalog* catalog = new Catalog(MakeTpchCatalog());
  const QueryDistribution dist = ExperimentWorkloads::Focused(catalog, 0);
  WorkloadGenerator gen(catalog, 3);
  std::vector<Query> queries;
  for (int i = 0; i < 256; ++i) queries.push_back(gen.Sample(dist));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        QuerySignatureHash()(ComputeSignature(*catalog,
                                              queries[i % queries.size()])));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignatureCompute);

void BM_TwoMeansSplit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < n; ++i) values.push_back(rng.NextDouble() * 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTwoMeansSplit(values).threshold);
  }
}
BENCHMARK(BM_TwoMeansSplit)->Arg(20)->Arg(200);

// ---- Observability primitives: the per-update cost every instrumented
// call site pays. range(0) selects registry state (0 = disabled — the
// default for production runs — 1 = enabled), so the disabled numbers
// bound the overhead instrumentation adds to an untraced run.

void BM_MetricsCounterAdd(benchmark::State& state) {
  MetricsRegistry registry;
  registry.set_enabled(state.range(0) != 0);
  Counter* counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Increment();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterAdd)->Arg(0)->Arg(1);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  MetricsRegistry registry;
  registry.set_enabled(state.range(0) != 0);
  Histogram* hist = registry.GetHistogram("bench.hist");
  double v = 1e-7;
  for (auto _ : state) {
    hist->Record(v);
    v = v < 1.0 ? v * 1.0001 : 1e-7;
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramRecord)->Arg(0)->Arg(1);

void BM_MetricsScopedTimer(benchmark::State& state) {
  MetricsRegistry registry;
  registry.set_enabled(state.range(0) != 0);
  Histogram* hist = registry.GetHistogram("bench.timer.seconds");
  for (auto _ : state) {
    ScopedTimer timer(hist);
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsScopedTimer)->Arg(0)->Arg(1);

void BM_WallTimerNow(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(WallTimer::Now());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WallTimerNow);

}  // namespace
}  // namespace colt

COLT_MICRO_BENCH_MAIN("micro_core");
