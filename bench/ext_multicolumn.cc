/// Extension experiment (ours — the paper's stated future work): COLT with
/// two-column composite index candidates. The workload issues queries with
/// an equality predicate plus a selective range predicate on the same
/// table — the textbook composite-index pattern — and we compare COLT with
/// and without multi-column mining.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace {

/// Two-predicate templates: equality on a medium-cardinality column plus a
/// selective range, per fact table.
colt::QueryDistribution TwoPredDistribution(colt::Catalog* catalog) {
  colt::QueryDistribution dist;
  dist.name = "two_pred";
  auto add = [&](const char* table, const char* eq_col, const char* rng_col,
                 double lo, double hi, double weight) {
    colt::QueryTemplate t;
    t.name = std::string(table) + "." + eq_col + "+" + rng_col;
    const colt::TableId tid = catalog->FindTable(table);
    t.tables = {tid};
    colt::SelectionSpec eq;
    eq.column = {tid, catalog->table(tid).FindColumn(eq_col)};
    eq.equality = true;
    colt::SelectionSpec range;
    range.column = {tid, catalog->table(tid).FindColumn(rng_col)};
    range.min_selectivity = lo;
    range.max_selectivity = hi;
    t.selections = {eq, range};
    dist.templates.push_back(std::move(t));
    dist.weights.push_back(weight);
  };
  add("lineitem_0", "l_returnflag", "l_shipdate", 0.002, 0.02, 3.0);
  add("lineitem_0", "l_shipmode", "l_extendedprice", 0.002, 0.02, 2.0);
  add("orders_0", "o_orderstatus", "o_orderdate", 0.002, 0.02, 2.0);
  add("orders_0", "o_orderpriority", "o_totalprice", 0.002, 0.02, 1.5);
  add("customer_0", "c_mktsegment", "c_acctbal", 0.002, 0.02, 1.0);
  return dist;
}

}  // namespace

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const colt::QueryDistribution dist = TwoPredDistribution(&catalog);
  colt::WorkloadGenerator gen(&catalog, 321);
  std::vector<colt::Query> workload;
  for (int i = 0; i < 600; ++i) workload.push_back(gen.Sample(dist));

  const int64_t budget = 96LL * 1024 * 1024;
  std::printf("Multi-column extension: 600 two-predicate queries "
              "(equality + selective range), budget %.0f MB\n\n",
              budget / (1024.0 * 1024.0));
  std::printf("%-22s %12s %12s %10s\n", "mode", "exec(s)", "tail exec(s)",
              "indexes");

  for (bool multicolumn : {false, true}) {
    colt::ColtConfig config;
    config.storage_budget_bytes = budget;
    config.mine_multicolumn_candidates = multicolumn;
    const colt::ColtRunResult run =
        colt::RunColtWorkload(&catalog, workload, config);
    double exec = 0, tail = 0;
    for (size_t i = 0; i < run.per_query.size(); ++i) {
      exec += run.per_query[i].execution;
      if (i >= 300) tail += run.per_query[i].execution;
    }
    int composites = 0;
    for (colt::IndexId id : run.final_materialized.ids()) {
      composites += catalog.index(id).is_composite() ? 1 : 0;
    }
    std::printf("%-22s %12.1f %12.1f %4zu (%d composite)\n",
                multicolumn ? "with-multicolumn" : "single-column-only",
                exec, tail, run.final_materialized.size(), composites);
    if (multicolumn) {
      std::printf("\nFinal configuration with the extension:\n");
      for (colt::IndexId id : run.final_materialized.ids()) {
        std::printf("  %-44s %8.1f MB\n", catalog.index(id).name.c_str(),
                    catalog.index(id).size_bytes / (1024.0 * 1024.0));
      }
    }
  }
  std::printf("\nExpected: composite indexes serve the equality+range "
              "pattern with a tighter usable prefix, lowering steady-state "
              "execution time.\n");
  return 0;
}
