/// Microbenchmarks for the worker pool: fan-out overhead at varying task
/// grain and worker counts, and the end-to-end parallel what-if path
/// (ColtTuner::OnQuery with num_workers > 0). On a single-core container
/// the >0-worker variants measure pure overhead — the interesting quantity
/// for the determinism-first design, since DESIGN.md §10 promises that
/// num_workers trades wall-clock only.
#include <benchmark/benchmark.h>

#include "micro_json_main.h"

#include <vector>

#include "common/thread_pool.h"
#include "core/colt.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace colt {
namespace {

/// Simulated what-if probe: a few hundred RNG draws, about the arithmetic
/// weight of one memoized WhatIfOptimize chunk.
uint64_t FakeProbe(uint64_t seed, size_t task, int grain) {
  Rng rng = ThreadPool::TaskRng(seed, task);
  uint64_t sum = 0;
  for (int i = 0; i < grain; ++i) sum += rng.NextBelow(1'000'000);
  return sum;
}

/// Map() fan-out/join cost across worker counts and task grains.
/// range(0) = workers, range(1) = draws per task.
void BM_PoolMap(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int grain = static_cast<int>(state.range(1));
  ThreadPool pool(workers);
  constexpr size_t kTasks = 8;
  for (auto _ : state) {
    std::vector<uint64_t> out = pool.Map(
        kTasks, [grain](size_t task) { return FakeProbe(7, task, grain); });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kTasks));
}
BENCHMARK(BM_PoolMap)
    ->ArgsProduct({{0, 2, 4}, {64, 1024, 16384}});

/// Bare Submit/get round trip: the fixed cost a staged index build pays
/// over calling Database::BuildIndex inline.
void BM_PoolSubmitLatency(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  ThreadPool pool(workers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Submit([] { return 1; }).get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolSubmitLatency)->Arg(0)->Arg(2)->Arg(4);

/// Full tuner loop with the profiler fanning what-if probes across the
/// pool. Compare the workers=0 row against the others: the delta is the
/// end-to-end cost (or gain) of parallel profiling on this machine.
void BM_ColtOnQueryWorkers(benchmark::State& state) {
  static Catalog* catalog = new Catalog(MakeTpchCatalog());
  QueryOptimizer optimizer(catalog);
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  config.num_workers = static_cast<int>(state.range(0));
  ColtTuner tuner(catalog, &optimizer, config);
  const QueryDistribution dist = ExperimentWorkloads::Focused(catalog, 0);
  WorkloadGenerator gen(catalog, 3);
  std::vector<Query> queries;
  for (int i = 0; i < 256; ++i) queries.push_back(gen.Sample(dist));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tuner.OnQuery(queries[i % queries.size()]).execution_seconds);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColtOnQueryWorkers)->Arg(0)->Arg(2)->Arg(4);

}  // namespace
}  // namespace colt

COLT_MICRO_BENCH_MAIN("micro_pool");
