/// Chaos experiment: replays the Fig. 4 shifting workload under escalating
/// fault rates and audits the robustness invariants after every query
/// (budget fit, no quarantined index materialized, consistent catalog and
/// byte accounting). A fault-free run establishes the baseline; the run at
/// `index.build` rate 0.2 must finish with every invariant intact and a
/// total time within 2x of fault-free. Exits non-zero on any violation.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/experiment.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace {

struct Tier {
  const char* label;
  double build_fail;
  double whatif_fail;
  double budget_shrink;
};

}  // namespace

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const std::vector<colt::QueryDistribution> dists =
      colt::ExperimentWorkloads::ShiftingPhases(&catalog);

  std::vector<colt::WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 300});

  colt::WorkloadGenerator gen(&catalog, /*seed=*/99);
  const std::vector<colt::Query> workload =
      colt::GeneratePhasedWorkload(gen, phases, /*transition_length=*/50,
                                   /*phase_of_query=*/nullptr);
  std::printf("Chaos run (Fig. 4 shifting workload): %zu queries\n\n",
              workload.size());

  // Same budget recipe as fig4_shifting.
  colt::QueryOptimizer probe_opt(&catalog);
  colt::OfflineTuner miner(&catalog, &probe_opt);
  colt::WorkloadGenerator phase_gen(&catalog, 1234);
  std::vector<colt::Query> mixed_sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) mixed_sample.push_back(phase_gen.Sample(d));
  }
  auto relevant = miner.MineRelevantIndexes(mixed_sample);
  if (!relevant.ok()) {
    std::fprintf(stderr, "%s\n", relevant.status().ToString().c_str());
    return 1;
  }
  const int64_t budget =
      colt::BudgetForIndexes(catalog, relevant.value(), 4.0);

  const Tier tiers[] = {
      {"fault-free", 0.0, 0.0, 0.0},
      {"build 5%", 0.05, 0.0, 0.0},
      {"build 10%", 0.10, 0.0, 0.0},
      {"build 20%", 0.20, 0.0, 0.0},
      {"build 40% + whatif 10%", 0.40, 0.10, 0.0},
      {"build 20% + whatif 20% + shrink", 0.20, 0.20, 0.002},
  };

  std::printf("%-34s %10s %8s %8s %8s %8s %8s %6s\n", "tier", "total(s)",
              "faults", "bfails", "quar", "degwi", "evict", "viol");

  double fault_free_total = 0.0;
  double rate20_total = 0.0;
  bool rate20_ok = false;
  int64_t total_violations = 0;

  for (const Tier& tier : tiers) {
    colt::ColtConfig config;
    config.storage_budget_bytes = budget;
    if (tier.build_fail > 0.0) {
      config.fault.Fail(colt::fault_sites::kIndexBuild, tier.build_fail);
    }
    if (tier.whatif_fail > 0.0) {
      config.fault.Fail(colt::fault_sites::kWhatIfOptimize,
                        tier.whatif_fail);
    }
    if (tier.budget_shrink > 0.0) {
      // Rare mid-run shrinks: each fire halves the remaining budget.
      config.fault.Slow(colt::fault_sites::kBudgetShrink,
                        tier.budget_shrink, 0.5);
      config.fault.rules[colt::fault_sites::kBudgetShrink].max_fires = 2;
    }

    const colt::ChaosRunResult chaos =
        colt::RunChaosWorkload(&catalog, workload, config);
    const double total = chaos.run.total_seconds();
    std::printf("%-34s %10.1f %8lld %8lld %8lld %8lld %8lld %6lld\n",
                tier.label, total,
                static_cast<long long>(chaos.injected_faults),
                static_cast<long long>(chaos.build_failures),
                static_cast<long long>(chaos.quarantine_events),
                static_cast<long long>(chaos.degraded_whatif),
                static_cast<long long>(chaos.emergency_evictions),
                static_cast<long long>(chaos.violation_count));
    for (const auto& v : chaos.violations) {
      std::printf("    VIOLATION @q%d: %s\n", v.query_index,
                  v.detail.c_str());
    }
    total_violations += chaos.violation_count;

    if (tier.build_fail == 0.0 && tier.whatif_fail == 0.0) {
      fault_free_total = total;
    }
    if (tier.build_fail == 0.20 && tier.whatif_fail == 0.0) {
      rate20_total = total;
      rate20_ok = chaos.ok();
    }
  }

  std::printf("\nfault-free total: %.1f s; build-20%% total: %.1f s "
              "(ratio %.2fx, bound 2.00x)\n",
              fault_free_total, rate20_total,
              fault_free_total > 0 ? rate20_total / fault_free_total : 0.0);

  bool pass = total_violations == 0 && rate20_ok;
  if (fault_free_total > 0 && rate20_total > 2.0 * fault_free_total) {
    std::printf("FAIL: build-20%% run exceeds 2x the fault-free total\n");
    pass = false;
  }
  std::printf("%s\n", pass ? "PASS: all robustness invariants held"
                           : "FAIL: robustness invariants violated");
  return pass ? 0 : 1;
}
