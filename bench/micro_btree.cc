/// Microbenchmarks for the B+-tree substrate.
#include <benchmark/benchmark.h>

#include <memory>

#include "micro_json_main.h"

#include "common/status.h"
#include "common/rng.h"
#include "index/btree.h"

namespace colt {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(42);
  std::vector<std::pair<int64_t, RowId>> entries;
  entries.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    entries.emplace_back(static_cast<int64_t>(rng.NextBelow(n)), i);
  }
  for (auto _ : state) {
    BTreeIndex tree;
    for (const auto& [k, v] : entries) tree.Insert(k, v);
    benchmark::DoNotOptimize(tree.entry_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeBulkLoad(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(42);
  std::vector<std::pair<int64_t, RowId>> entries;
  entries.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    entries.emplace_back(static_cast<int64_t>(rng.NextBelow(n)), i);
  }
  for (auto _ : state) {
    BTreeIndex tree;
    auto copy = entries;
    benchmark::DoNotOptimize(tree.BulkLoad(std::move(copy)).ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_BTreeRangeScan(benchmark::State& state) {
  const int64_t n = 1'000'000;
  const int64_t width = state.range(0);
  Rng rng(7);
  std::vector<std::pair<int64_t, RowId>> entries;
  entries.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    entries.emplace_back(static_cast<int64_t>(rng.NextBelow(n)), i);
  }
  BTreeIndex tree;
  ColtIgnoreStatus(tree.BulkLoad(std::move(entries)));
  std::vector<RowId> out;
  int64_t lo = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(tree.RangeScan(lo, lo + width, &out));
    lo = (lo + 9973) % (n - width);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeRangeScan)->Arg(10)->Arg(1000)->Arg(100000);

/// One shared million-entry tree for the contended read benches: built
/// once (thread-safe magic static), deliberately leaked so late-exiting
/// benchmark threads never race its destruction.
const BTreeIndex& SharedMillionEntryTree() {
  static const BTreeIndex* tree = [] {
    const int64_t n = 1'000'000;
    Rng rng(7);
    std::vector<std::pair<int64_t, RowId>> entries;
    entries.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      entries.emplace_back(static_cast<int64_t>(rng.NextBelow(n)), i);
    }
    auto t = std::make_unique<BTreeIndex>();
    ColtIgnoreStatus(t->BulkLoad(std::move(entries)));
    return t.release();
  }();
  return *tree;
}

/// Read-side OLC cost under contention: the same point lookup on 1 vs 8
/// threads sharing one tree. With version-validated descents the 8-thread
/// run should scale near-linearly on real hardware (single-core CI shows
/// timesharing, not contention).
void BM_BTreeContendedLookup(benchmark::State& state) {
  const BTreeIndex& tree = SharedMillionEntryTree();
  const int64_t n = 1'000'000;
  std::vector<RowId> out;
  Rng probe(static_cast<uint64_t>(11 + state.thread_index()));
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        tree.Lookup(static_cast<int64_t>(probe.NextBelow(n)), &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeContendedLookup)->Threads(1)->Threads(8)->UseRealTime();

/// Same shape for leaf-chain range scans (1k-wide windows).
void BM_BTreeContendedScan(benchmark::State& state) {
  const BTreeIndex& tree = SharedMillionEntryTree();
  const int64_t n = 1'000'000;
  const int64_t width = 1000;
  std::vector<RowId> out;
  int64_t lo = 9973 * state.thread_index();
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(tree.RangeScan(lo, lo + width, &out));
    lo = (lo + 9973) % (n - width);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeContendedScan)->Threads(1)->Threads(8)->UseRealTime();

void BM_BTreePointLookup(benchmark::State& state) {
  const int64_t n = 1'000'000;
  Rng rng(7);
  std::vector<std::pair<int64_t, RowId>> entries;
  for (int64_t i = 0; i < n; ++i) {
    entries.emplace_back(static_cast<int64_t>(rng.NextBelow(n)), i);
  }
  BTreeIndex tree;
  ColtIgnoreStatus(tree.BulkLoad(std::move(entries)));
  std::vector<RowId> out;
  Rng probe(11);
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        tree.Lookup(static_cast<int64_t>(probe.NextBelow(n)), &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePointLookup);

}  // namespace
}  // namespace colt

COLT_MICRO_BENCH_MAIN("micro_btree");
