/// Reproduces Table 1 of the paper: characteristics of the synthetic data
/// set (4 TPC-H schema instances).
#include <algorithm>
#include <cstdio>

#include "storage/tpch_schema.h"

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();

  int64_t total_rows = 0;
  int64_t largest = 0;
  int64_t smallest = INT64_MAX;
  int32_t indexable = 0;
  for (colt::TableId t = 0; t < catalog.table_count(); ++t) {
    const auto& table = catalog.table(t);
    total_rows += table.row_count();
    largest = std::max(largest, table.row_count());
    smallest = std::min(smallest, table.row_count());
    indexable += table.indexable_column_count();
  }
  const double gb =
      static_cast<double>(catalog.total_heap_bytes()) / (1024.0 * 1024 * 1024);

  std::printf("Table 1: Data Set Characteristics (paper values in parens)\n");
  std::printf("---------------------------------------------------------\n");
  std::printf("%-32s %12.2f GB  (1.4 GB)\n", "Size (binary data)", gb);
  std::printf("%-32s %12d     (32)\n", "# Tables", catalog.table_count());
  std::printf("%-32s %12lld     (6,928,120)\n", "# Tuples in all tables",
              static_cast<long long>(total_rows));
  std::printf("%-32s %12lld     (1,200,000)\n", "# Tuples in largest table",
              static_cast<long long>(largest));
  std::printf("%-32s %12lld     (5)\n", "# Tuples in smallest table",
              static_cast<long long>(smallest));
  std::printf("%-32s %12d     (244)\n", "# Indexable attributes", indexable);
  return 0;
}
