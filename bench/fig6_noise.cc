/// Reproduces Figure 6 of the paper: resilience to noise. The workload is
/// drawn from a fixed distribution Q1 with concentrated bursts of queries
/// from a second distribution Q2 (20% of the load); the burst length varies
/// from 20 to 90 queries. Expected shape: COLT matches OFFLINE (tuned on Q1
/// only, ignoring noise) for short bursts (<= 20, ignored as noise) and for
/// long bursts (>= 70, worth materializing for), with a penalty region
/// around 30-60-query bursts (paper: average loss ~18%).
#include <cstdio>

#include "harness/experiment.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const colt::QueryDistribution q1 =
      colt::ExperimentWorkloads::NoiseBase(&catalog);
  const colt::QueryDistribution q2 =
      colt::ExperimentWorkloads::NoiseBurst(&catalog);

  // Budget sized as in the previous experiments.
  colt::QueryOptimizer probe_opt(&catalog);
  colt::OfflineTuner miner(&catalog, &probe_opt);
  colt::WorkloadGenerator probe_gen(&catalog, 1234);
  std::vector<colt::Query> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(probe_gen.Sample(q1));
  auto relevant = miner.MineRelevantIndexes(sample);
  const int64_t budget =
      colt::BudgetForIndexes(catalog, relevant.value(), 4.0);

  std::printf("Figure 6 (noise): COLT/OFFLINE execution-time ratio vs. "
              "burst duration\n");
  std::printf("OFFLINE is tuned solely on Q1 (noise ignored); the first 100 "
              "queries are excluded from the ratio, as in the paper.\n\n");
  std::printf("%10s %12s %12s %10s\n", "burst", "COLT(s)", "OFFLINE(s)",
              "ratio");

  const int kWarmup = 100;
  const int kSeeds = 5;
  for (int burst = 20; burst <= 90; burst += 10) {
    double colt_total = 0.0, off_total = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      colt::WorkloadGenerator gen(&catalog, /*seed=*/555 + burst + 7919 * s);
      std::vector<bool> is_noise;
      const std::vector<colt::Query> workload = colt::GenerateNoisyWorkload(
          gen, q1, q2, /*total_queries=*/500, kWarmup, burst,
          /*noise_fraction=*/0.20, /*min_bursts=*/2, &is_noise);

      colt::ColtConfig config;
      config.storage_budget_bytes = budget;
      const colt::ColtRunResult colt_run =
          colt::RunColtWorkload(&catalog, workload, config, {},
                                /*seed=*/7 + s);

      // OFFLINE tunes on the pure Q1 component only.
      std::vector<colt::Query> q1_only;
      for (size_t i = 0; i < workload.size(); ++i) {
        if (!is_noise[i]) q1_only.push_back(workload[i]);
      }
      auto offline =
          colt::RunOfflineWorkload(&catalog, workload, q1_only, budget);
      if (!offline.ok()) {
        std::fprintf(stderr, "%s\n", offline.status().ToString().c_str());
        return 1;
      }
      for (size_t i = kWarmup; i < workload.size(); ++i) {
        colt_total += colt_run.per_query[i].total();
        off_total += offline->per_query_seconds[i];
      }
    }
    std::printf("%10d %12.1f %12.1f %10.3f\n", burst, colt_total / kSeeds,
                off_total / kSeeds,
                off_total > 0 ? colt_total / off_total : 0.0);
  }
  std::printf("\nPaper shape: ratio ~1.0 for bursts <= 20 and >= 70; worst "
              "~1.18 average in the 30-60 range.\n");
  return 0;
}
