/// Cost-model validation (supports DESIGN.md §3's substitution argument):
/// at reduced scale, execute randomly generated queries physically under
/// random index configurations and compare the optimizer's estimated plan
/// cost with the cost implied by the *measured* page/tuple counts. The
/// simulated experiments are trustworthy to the extent these two agree in
/// rank and rough magnitude.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "exec/executor.h"
#include "harness/workloads.h"
#include "optimizer/optimizer.h"
#include "storage/tpch_schema.h"

int main() {
  colt::TpchOptions options;
  options.instances = 1;
  options.scale = 0.02;
  colt::Database db(colt::MakeTpchCatalog(options), 42);
  if (!db.MaterializeAll(/*refresh_stats=*/true).ok()) return 1;

  // Build every index the focused workload can use.
  std::vector<colt::IndexId> ids;
  for (const colt::ColumnRef& col :
       colt::ExperimentWorkloads::RelevantColumns(&db.mutable_catalog(), 0)) {
    auto desc = db.mutable_catalog().IndexOn(col);
    if (desc.ok() && db.BuildIndex(desc->id).ok()) ids.push_back(desc->id);
  }

  colt::QueryOptimizer optimizer(&db.catalog());
  colt::Executor executor(&db);
  const colt::QueryDistribution dist =
      colt::ExperimentWorkloads::Focused(&db.mutable_catalog(), 0);
  colt::WorkloadGenerator gen(&db.catalog(), 7);
  colt::Rng rng(13);

  std::vector<double> estimated, measured;
  int plans_by_type[8] = {0};
  const int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    const colt::Query q = gen.Sample(dist);
    colt::IndexConfiguration config;
    for (colt::IndexId id : ids) {
      if (rng.NextBool(0.5)) config.Add(id);
    }
    const colt::PlanResult plan = optimizer.Optimize(q, config);
    auto result = executor.Execute(*plan.plan);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    estimated.push_back(plan.cost);
    measured.push_back(
        result->MeasuredCost(optimizer.cost_model().params()));
    ++plans_by_type[static_cast<int>(plan.plan->type)];
  }

  // Pearson correlation of log-costs plus the ratio distribution.
  auto mean_of = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s / v.size();
  };
  std::vector<double> le, lm, ratio;
  for (size_t i = 0; i < estimated.size(); ++i) {
    le.push_back(std::log(std::max(1.0, estimated[i])));
    lm.push_back(std::log(std::max(1.0, measured[i])));
    ratio.push_back(estimated[i] / std::max(1.0, measured[i]));
  }
  const double me = mean_of(le), mm = mean_of(lm);
  double cov = 0, ve = 0, vm = 0;
  for (size_t i = 0; i < le.size(); ++i) {
    cov += (le[i] - me) * (lm[i] - mm);
    ve += (le[i] - me) * (le[i] - me);
    vm += (lm[i] - mm) * (lm[i] - mm);
  }
  const double correlation = cov / std::sqrt(ve * vm);
  std::sort(ratio.begin(), ratio.end());

  std::printf("Cost-model validation: %d random (query, configuration) "
              "pairs at 2%% scale\n\n", kQueries);
  std::printf("log-cost correlation (estimated vs measured): %.3f\n",
              correlation);
  std::printf("estimate/measured ratio: p10=%.2f p50=%.2f p90=%.2f\n",
              ratio[ratio.size() / 10], ratio[ratio.size() / 2],
              ratio[9 * ratio.size() / 10]);
  std::printf("plan mix: seqscan=%d indexscan=%d bitmap=%d nlj=%d inlj=%d "
              "hash=%d\n",
              plans_by_type[static_cast<int>(colt::PlanNodeType::kSeqScan)],
              plans_by_type[static_cast<int>(colt::PlanNodeType::kIndexScan)],
              plans_by_type[static_cast<int>(colt::PlanNodeType::kBitmapScan)],
              plans_by_type[static_cast<int>(
                  colt::PlanNodeType::kNestLoopJoin)],
              plans_by_type[static_cast<int>(
                  colt::PlanNodeType::kIndexNLJoin)],
              plans_by_type[static_cast<int>(colt::PlanNodeType::kHashJoin)]);
  std::printf("\nA correlation near 1 and ratios within a small constant "
              "factor mean the simulated timings rank plans the same way "
              "physical execution does.\n");
  return correlation > 0.8 ? 0 : 1;
}
