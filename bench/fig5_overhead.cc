/// Reproduces Figure 5 of the paper: the number of what-if calls COLT
/// issues per epoch over the shifting workload of Figure 4. Expected
/// shape: four discernible peaks (up to #WI_max = 20) coinciding with the
/// phase transitions, and less than half the budget used in stable
/// stretches; only a small fraction of the relevant indexes is ever
/// profiled (paper: ~11%).
///
/// This binary doubles as the observability-layer overhead check: it runs
/// the same workload twice in one process — metrics/tracing disabled, then
/// enabled — and reports
///  * the wall-clock overhead of the instrumentation
///    (`instrumentation_overhead_pct=`), and
///  * the per-component tuning-overhead breakdown from the metrics
///    histograms (`breakdown_*`), whose components should sum to within
///    10% of the measured OnQuery total.
/// With --smoke, a shortened workload keeps the run CI-sized. The enabled
/// run's metrics snapshot and trace are exported as JSONL/Chrome-trace
/// into COLT_CSV_DIR (when set) and re-parsed in-process to validate the
/// round trip.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_json.h"
#include "common/status.h"
#include "common/metrics.h"
#include "common/provenance.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace {

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return out.good();
}

/// Sum of a histogram's recorded values, 0 when the name is unknown.
double HistSum(const colt::MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.histograms.find(name);
  return it == snap.histograms.end() ? 0.0 : it->second.sum;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int queries_per_phase = smoke ? 60 : 300;
  const int transition_length = smoke ? 20 : 50;

  colt::Catalog catalog = colt::MakeTpchCatalog();
  const std::vector<colt::QueryDistribution> dists =
      colt::ExperimentWorkloads::ShiftingPhases(&catalog);
  std::vector<colt::WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, queries_per_phase});

  colt::WorkloadGenerator gen(&catalog, /*seed=*/99);
  const std::vector<colt::Query> workload =
      colt::GeneratePhasedWorkload(gen, phases, transition_length);

  colt::QueryOptimizer probe_opt(&catalog);
  colt::OfflineTuner miner(&catalog, &probe_opt);
  colt::WorkloadGenerator phase_gen(&catalog, 1234);
  std::vector<colt::Query> sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) sample.push_back(phase_gen.Sample(d));
  }
  auto relevant = miner.MineRelevantIndexes(sample);
  const int64_t budget =
      colt::BudgetForIndexes(catalog, relevant.value(), 4.0);

  colt::ColtConfig config;
  config.storage_budget_bytes = budget;

  colt::MetricsRegistry& registry = colt::MetricsRegistry::Default();
  colt::Tracer& tracer = colt::Tracer::Default();

  // ---- Pass 0: warmup (not measured; fills caches, faults no one).
  colt::ColtIgnoreStatus(colt::RunColtWorkload(&catalog, workload, config));

  // The overhead gate compares the metrics layer enabled vs disabled in
  // one process (runtime-disabled is strictly slower than compiled-out,
  // so a pass here bounds the compiled-out overhead too). Disabled and
  // enabled passes are interleaved so both see the same frequency/noise
  // environment, and the minimum per-pass time is the robust estimator
  // of the true cost. Span tracing is the opt-in debugging layer and is
  // measured separately by its own pass below.
  const int repeats = smoke ? 15 : 5;
  auto timed_run = [&](const colt::ColtConfig& cfg) {
    colt::WallTimer timer;
    colt::ColtIgnoreStatus(colt::RunColtWorkload(&catalog, workload, cfg));
    return timer.Seconds();
  };
  // The provenance leg measures the flight recorder alone: metrics and
  // tracing stay disabled, only the event ring records (DESIGN.md §13).
  colt::ColtConfig prov_config = config;
  prov_config.provenance_events = 1 << 16;
  tracer.set_enabled(false);
  registry.Reset();
  double disabled_seconds = 0.0;
  double enabled_seconds = 0.0;
  double provenance_seconds = 0.0;
  auto measure_round = [&](bool first) {
    for (int i = 0; i < repeats; ++i) {
      const bool seed = first && i == 0;
      registry.set_enabled(false);
      const double off = timed_run(config);
      if (seed || off < disabled_seconds) disabled_seconds = off;
      registry.set_enabled(true);
      const double on = timed_run(config);
      if (seed || on < enabled_seconds) enabled_seconds = on;
      registry.set_enabled(false);
      const double prov = timed_run(prov_config);
      if (seed || prov < provenance_seconds) provenance_seconds = prov;
    }
  };
  measure_round(/*first=*/true);
  // The minimum is a monotone estimator: extra rounds can only lower it.
  // On loaded runners a single leg's minimum can still land entirely in
  // noisy windows, so when a 5% gate below would trip, re-measure up to
  // twice before believing it — a genuine regression keeps failing, a
  // noise spike converges away.
  auto pct_over_disabled = [&](double seconds) {
    return disabled_seconds > 0.0
               ? 100.0 * (seconds - disabled_seconds) / disabled_seconds
               : 0.0;
  };
  for (int retry = 0;
       retry < 2 && (pct_over_disabled(enabled_seconds) > 5.0 ||
                     (colt::kProvenanceCompiledIn &&
                      pct_over_disabled(provenance_seconds) > 5.0));
       ++retry) {
    measure_round(/*first=*/false);
  }

  // ---- Pass 3: metrics + tracing enabled — the run the figure, the
  // breakdown, and the exports are taken from.
  registry.Reset();
  registry.set_enabled(true);
  tracer.Clear();
  tracer.set_enabled(true);
  colt::WallTimer traced_timer;
  const colt::ColtRunResult run =
      colt::RunColtWorkload(&catalog, workload, config);
  const double traced_seconds = traced_timer.Seconds();
  registry.set_enabled(false);
  tracer.set_enabled(false);

  const colt::MetricsSnapshot snapshot = registry.Snapshot();

  // ---- Exports (COLT_CSV_DIR): epoch CSV, metrics JSONL, trace dumps.
  const char* csv_env = std::getenv("COLT_CSV_DIR");
  const std::string csv_dir = csv_env != nullptr ? csv_env : "";
  colt::ColtIgnoreStatus(
      colt::MaybeWriteCsvFile(csv_dir, "fig5_epochs.csv",
                              [&](std::ostream& out) {
                                return colt::WriteEpochReportCsv(
                                    run.epochs, out);
                              }));
  if (!csv_dir.empty()) {
    WriteTextFile(csv_dir + "/fig5_metrics.jsonl", snapshot.ToJsonl());
    WriteTextFile(csv_dir + "/fig5_trace.jsonl", tracer.ToJsonl());
    WriteTextFile(csv_dir + "/fig5_trace_chrome.json",
                  tracer.ToChromeTrace());
  }

  // ---- Round-trip validation: the exported JSONL must parse back losslessly.
  const auto reparsed = colt::MetricsSnapshot::FromJsonl(snapshot.ToJsonl());
  const bool metrics_roundtrip_ok =
      reparsed.ok() && reparsed.value() == snapshot;
  const auto respanned = colt::Tracer::FromJsonl(tracer.ToJsonl());
  const bool trace_roundtrip_ok =
      respanned.ok() && respanned.value().size() == tracer.Spans().size();

  // ---- Figure 5 proper.
  std::printf("Figure 5 (self-regulated overhead): what-if calls per epoch "
              "(#WI_max = %d, epoch = %d queries)%s\n",
              config.max_whatif_per_epoch, config.epoch_length,
              smoke ? " [smoke]" : "");
  if (!smoke) {
    std::printf(
        "Phase transitions occur near epochs 30-35, 65-70, 100-105.\n");
  }
  std::printf("\n%6s %8s %8s   histogram\n", "epoch", "used", "limit");
  int64_t total_calls = 0;
  int epochs_above_half = 0;
  for (const auto& e : run.epochs) {
    total_calls += e.whatif_used;
    if (e.whatif_used > config.max_whatif_per_epoch / 2) ++epochs_above_half;
    std::printf("%6d %8d %8d   ", e.epoch, e.whatif_used, e.whatif_limit);
    for (int i = 0; i < e.whatif_used; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("\nTotal what-if calls: %lld over %zu epochs (avg %.2f, "
              "budget %d)\n",
              static_cast<long long>(total_calls), run.epochs.size(),
              static_cast<double>(total_calls) / run.epochs.size(),
              config.max_whatif_per_epoch);
  std::printf("Epochs using more than half the budget: %d of %zu\n",
              epochs_above_half, run.epochs.size());
  std::printf("Distinct indexes profiled: %lld of %zu relevant (%.0f%%; "
              "the paper reports ~11%% against a much larger universe of "
              "relevant attributes)\n",
              static_cast<long long>(run.distinct_indexes_profiled),
              relevant.value().size(),
              100.0 * run.distinct_indexes_profiled /
                  std::max<size_t>(1, relevant.value().size()));

  // ---- Instrumented tuning-overhead breakdown (wall-clock, from the
  // metrics histograms of the enabled pass). profiler.profile.seconds
  // already contains the nested what-if optimizer time, so the what-if
  // line is shown for reference but not added to the component sum.
  const double plan_s = HistSum(snapshot, "optimizer.plan.seconds");
  const double profile_s = HistSum(snapshot, "profiler.profile.seconds");
  const double whatif_s = HistSum(snapshot, "optimizer.whatif.seconds");
  const double knapsack_s =
      HistSum(snapshot, "self_organizer.knapsack.seconds");
  const double epoch_end_s =
      HistSum(snapshot, "self_organizer.epoch_end.seconds");
  const double apply_s = HistSum(snapshot, "scheduler.apply.seconds");
  const double on_query_s = HistSum(snapshot, "colt.on_query.seconds");
  const double component_sum = plan_s + profile_s + epoch_end_s + apply_s;

  std::printf("\nTuning-pipeline wall-clock breakdown (instrumented run):\n");
  std::printf("  %-34s %12.6f s\n", "optimizer.plan (normal plans)", plan_s);
  std::printf("  %-34s %12.6f s\n", "profiler.profile (incl. what-if)",
              profile_s);
  std::printf("  %-34s %12.6f s\n", "  of which optimizer.whatif", whatif_s);
  std::printf("  %-34s %12.6f s\n", "self_organizer.epoch_end", epoch_end_s);
  std::printf("  %-34s %12.6f s\n", "  of which knapsack solves", knapsack_s);
  std::printf("  %-34s %12.6f s\n", "scheduler.apply (builds/drops)",
              apply_s);
  std::printf("  %-34s %12.6f s\n", "component sum", component_sum);
  std::printf("  %-34s %12.6f s\n", "colt.on_query total", on_query_s);
  const double coverage =
      on_query_s > 0.0 ? component_sum / on_query_s : 0.0;
  std::printf("breakdown_component_sum_s=%.6f\n", component_sum);
  std::printf("breakdown_on_query_total_s=%.6f\n", on_query_s);
  std::printf("breakdown_coverage=%.4f\n", coverage);

  // ---- Instrumentation overhead: enabled vs disabled, same process.
  const double overhead_pct =
      disabled_seconds > 0.0
          ? 100.0 * (enabled_seconds - disabled_seconds) / disabled_seconds
          : 0.0;
  std::printf("\nInstrumentation overhead (metrics %s at compile time, "
              "min of %d passes):\n",
              colt::kMetricsCompiledIn ? "compiled in" : "compiled OUT",
              repeats);
  std::printf("  disabled: %.4f s, metrics enabled: %.4f s, "
              "metrics+tracing: %.4f s\n",
              disabled_seconds, enabled_seconds, traced_seconds);
  std::printf("instrumentation_overhead_pct=%.2f\n", overhead_pct);
  const double provenance_overhead_pct =
      disabled_seconds > 0.0
          ? 100.0 * (provenance_seconds - disabled_seconds) / disabled_seconds
          : 0.0;
  std::printf("  provenance recorder (%s): %.4f s\n",
              colt::kProvenanceCompiledIn ? "compiled in" : "compiled OUT",
              provenance_seconds);
  std::printf("provenance_overhead_pct=%.2f\n", provenance_overhead_pct);
  std::printf("metrics_jsonl_roundtrip=%s\n",
              metrics_roundtrip_ok ? "ok" : "FAILED");
  std::printf("trace_jsonl_roundtrip=%s\n",
              trace_roundtrip_ok ? "ok" : "FAILED");
  std::printf("trace_spans=%zu dropped=%lld\n", tracer.Spans().size(),
              static_cast<long long>(tracer.dropped()));

  // ---- Parallel what-if speedup (DESIGN.md §10). A probe-heavy config
  // (#WI_max raised so the per-query live set is worth chunking) runs
  // serial and with 4 workers; the compared quantity is the wall-clock
  // spent inside the Profiler's what-if section
  // (profiler.whatif_wall.seconds), min-of-N per mode. The epoch CSVs of
  // the two modes must be byte-identical — the speedup may never buy a
  // different answer.
  colt::ColtConfig heavy = config;
  heavy.max_whatif_per_epoch = 200;
  // The plan cache would short-circuit most repeat probes and leave the
  // pool nothing to parallelize; this pass measures the fan-out itself,
  // so it runs uncached (the cache gets its own gate below).
  heavy.whatif_cache_bytes = 0;
  auto heavy_pass = [&](int workers, std::string* epoch_csv) {
    heavy.num_workers = workers;
    registry.Reset();
    registry.set_enabled(true);
    const colt::ColtRunResult heavy_run =
        colt::RunColtWorkload(&catalog, workload, heavy);
    registry.set_enabled(false);
    if (epoch_csv != nullptr) {
      std::ostringstream out;
      colt::ColtIgnoreStatus(colt::WriteEpochReportCsv(heavy_run.epochs, out));
      *epoch_csv = out.str();
    }
    return HistSum(registry.Snapshot(), "profiler.whatif_wall.seconds");
  };
  std::string serial_csv, parallel_csv;
  double serial_whatif = 0.0, parallel_whatif = 0.0;
  const int speedup_repeats = 3;
  for (int i = 0; i < speedup_repeats; ++i) {
    const double s = heavy_pass(0, i == 0 ? &serial_csv : nullptr);
    if (i == 0 || s < serial_whatif) serial_whatif = s;
    const double p = heavy_pass(4, i == 0 ? &parallel_csv : nullptr);
    if (i == 0 || p < parallel_whatif) parallel_whatif = p;
  }
  const double speedup =
      parallel_whatif > 0.0 ? serial_whatif / parallel_whatif : 0.0;
  const int hw = colt::ThreadPool::HardwareConcurrency();
  const bool csv_identical = serial_csv == parallel_csv;
  std::printf("\nParallel what-if profiling (workers=4 vs serial, min of %d "
              "passes):\n  serial %.4f s, parallel %.4f s\n",
              speedup_repeats, serial_whatif, parallel_whatif);
  std::printf("hardware_concurrency=%d\n", hw);
  std::printf("parallel_whatif_speedup=%.3f\n", speedup);
  std::printf("parallel_epoch_csv_identical=%s\n",
              csv_identical ? "ok" : "FAILED");

  // ---- Cross-epoch what-if plan cache (DESIGN.md §11). A recurring
  // stable-phase workload — a fixed pool of distinct queries reissued at
  // random, the canned-report/dashboard shape the cache exists for — runs
  // cache-off and cache-on under a probe-heavy config. Compared: the
  // what-if wall-clock (min-of-N), the hit rate of the cache-on pass, and
  // (mandatory) byte-identical epoch CSVs — the cache may only buy time,
  // never a different answer.
  colt::WorkloadGenerator cache_gen(&catalog, /*seed=*/4242);
  std::vector<colt::Query> pool;
  for (int i = 0; i < 25; ++i) pool.push_back(cache_gen.Sample(dists[0]));
  const int stable_n = smoke ? 400 : 1200;
  std::vector<colt::Query> stable;
  stable.reserve(static_cast<size_t>(stable_n));
  colt::Rng pick(/*seed=*/777);
  for (int i = 0; i < stable_n; ++i) {
    colt::Query q = pool[pick.NextBelow(pool.size())];
    q.set_id(i);
    stable.push_back(q);
  }
  colt::ColtConfig cache_cfg = config;
  // Probe every relevant pair every time: re-budgeting and adaptive
  // sampling would throttle the stable phase to a trickle of what-if
  // calls, and this gate wants the cache under real load.
  cache_cfg.enable_rebudgeting = false;
  cache_cfg.enable_adaptive_sampling = false;
  cache_cfg.uniform_sample_rate = 1.0;
  cache_cfg.max_whatif_per_epoch = 200;
  int64_t cache_sc = 0, cache_hits = 0, cache_misses = 0;
  auto cache_pass = [&](int64_t cache_bytes, std::string* epoch_csv,
                        bool record_counters) {
    cache_cfg.whatif_cache_bytes = cache_bytes;
    registry.Reset();
    registry.set_enabled(true);
    const colt::ColtRunResult r =
        colt::RunColtWorkload(&catalog, stable, cache_cfg);
    registry.set_enabled(false);
    if (epoch_csv != nullptr) {
      std::ostringstream out;
      colt::ColtIgnoreStatus(colt::WriteEpochReportCsv(r.epochs, out));
      *epoch_csv = out.str();
    }
    if (record_counters) {
      cache_sc = registry
                     .GetCounter("profiler.whatif_cache.shortcircuit_hits")
                     ->value();
      cache_hits = registry.GetCounter("optimizer.whatif_cache.hits")->value();
      cache_misses =
          registry.GetCounter("optimizer.whatif_cache.misses")->value();
    }
    return HistSum(registry.Snapshot(), "profiler.whatif_wall.seconds");
  };
  std::string cache_off_csv, cache_on_csv;
  double cache_off_whatif = 0.0, cache_on_whatif = 0.0;
  for (int i = 0; i < speedup_repeats; ++i) {
    const double off = cache_pass(0, i == 0 ? &cache_off_csv : nullptr, false);
    if (i == 0 || off < cache_off_whatif) cache_off_whatif = off;
    const double on = cache_pass(8LL * 1024 * 1024,
                                 i == 0 ? &cache_on_csv : nullptr, i == 0);
    if (i == 0 || on < cache_on_whatif) cache_on_whatif = on;
  }
  const int64_t cache_lookups = cache_sc + cache_hits + cache_misses;
  const double cache_hit_rate =
      cache_lookups > 0
          ? static_cast<double>(cache_sc + cache_hits) / cache_lookups
          : 0.0;
  const double cache_speedup =
      cache_on_whatif > 0.0 ? cache_off_whatif / cache_on_whatif : 0.0;
  const bool cache_csv_identical = cache_off_csv == cache_on_csv;
  std::printf("\nWhat-if plan cache (recurring stable workload, min of %d "
              "passes):\n  cache off %.4f s, cache on %.4f s of what-if "
              "wall\n  %lld short-circuit + %lld optimizer hits / %lld "
              "lookups\n",
              speedup_repeats, cache_off_whatif, cache_on_whatif,
              static_cast<long long>(cache_sc),
              static_cast<long long>(cache_hits),
              static_cast<long long>(cache_lookups));
  std::printf("whatif_cache_hit_rate=%.3f\n", cache_hit_rate);
  std::printf("whatif_cache_speedup=%.3f\n", cache_speedup);
  std::printf("whatif_cache_epoch_csv_identical=%s\n",
              cache_csv_identical ? "ok" : "FAILED");

  // ---- Machine-readable results: one JSONL record per headline metric,
  // written as BENCH_fig5.json into COLT_CSV_DIR (or the working
  // directory) so CI can track figures without scraping stdout.
  {
    const std::string variant = smoke ? "smoke" : "full";
    std::vector<colt::bench_json::Record> records;
    auto add = [&](const std::string& metric, double value,
                   const std::string& units) {
      records.push_back({"fig5_overhead", variant, metric, value, units});
    };
    add("instrumentation_overhead_pct", overhead_pct, "percent");
    add("provenance_overhead_pct", provenance_overhead_pct, "percent");
    add("breakdown_component_sum_s", component_sum, "seconds");
    add("breakdown_on_query_total_s", on_query_s, "seconds");
    add("breakdown_coverage", coverage, "ratio");
    add("parallel_whatif_speedup", speedup, "ratio");
    add("whatif_cache_hit_rate", cache_hit_rate, "ratio");
    add("whatif_cache_speedup", cache_speedup, "ratio");
    add("total_whatif_calls", static_cast<double>(total_calls), "count");
    if (!colt::bench_json::Write("BENCH_fig5.json", records)) {
      std::printf("FAILED: could not write BENCH_fig5.json\n");
      return 1;
    }
    std::printf("bench_json=BENCH_fig5.json records=%zu\n", records.size());
  }

  if (!metrics_roundtrip_ok || !trace_roundtrip_ok) return 1;
  if (!csv_identical) {
    std::printf("FAILED: parallel epoch CSV differs from serial\n");
    return 1;
  }
  if (!cache_csv_identical) {
    std::printf("FAILED: cache-on epoch CSV differs from cache-off\n");
    return 1;
  }
  if (cache_hit_rate <= 0.5) {
    std::printf("FAILED: what-if cache hit rate %.3f below the 0.5 gate on "
                "a recurring workload\n", cache_hit_rate);
    return 1;
  }
  if (cache_speedup < 1.2) {
    std::printf("FAILED: what-if cache speedup %.3f below the 1.2x gate\n",
                cache_speedup);
    return 1;
  }
  // The wall-clock gate needs real cores; on smaller machines the number
  // is still printed for the record but only determinism is enforced.
  if (hw >= 4) {
    if (speedup < 1.5) {
      std::printf("FAILED: parallel what-if speedup %.3f below the 1.5x "
                  "gate on a %d-core machine\n", speedup, hw);
      return 1;
    }
  } else {
    std::printf("speedup gate skipped: %d hardware threads < 4\n", hw);
  }
  // The breakdown must explain the OnQuery total: components within 10%.
  if (on_query_s > 0.0 && (coverage < 0.9 || coverage > 1.1)) {
    std::printf("FAILED: breakdown components do not sum to within 10%% of "
                "the OnQuery total\n");
    return 1;
  }
  if (overhead_pct > 5.0) {
    std::printf("FAILED: instrumentation overhead above the 5%% budget\n");
    return 1;
  }
  if (colt::kProvenanceCompiledIn && provenance_overhead_pct > 5.0) {
    std::printf("FAILED: provenance recorder overhead above the 5%% "
                "budget\n");
    return 1;
  }
  return 0;
}
