/// Reproduces Figure 5 of the paper: the number of what-if calls COLT
/// issues per epoch over the shifting workload of Figure 4. Expected
/// shape: four discernible peaks (up to #WI_max = 20) coinciding with the
/// phase transitions, and less than half the budget used in stable
/// stretches; only a small fraction of the relevant indexes is ever
/// profiled (paper: ~11%).
#include <cstdio>

#include <cstdlib>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  const std::vector<colt::QueryDistribution> dists =
      colt::ExperimentWorkloads::ShiftingPhases(&catalog);
  std::vector<colt::WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 300});

  colt::WorkloadGenerator gen(&catalog, /*seed=*/99);
  const std::vector<colt::Query> workload =
      colt::GeneratePhasedWorkload(gen, phases, /*transition_length=*/50);

  colt::QueryOptimizer probe_opt(&catalog);
  colt::OfflineTuner miner(&catalog, &probe_opt);
  colt::WorkloadGenerator phase_gen(&catalog, 1234);
  std::vector<colt::Query> sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) sample.push_back(phase_gen.Sample(d));
  }
  auto relevant = miner.MineRelevantIndexes(sample);
  const int64_t budget =
      colt::BudgetForIndexes(catalog, relevant.value(), 4.0);

  colt::ColtConfig config;
  config.storage_budget_bytes = budget;
  const colt::ColtRunResult run =
      colt::RunColtWorkload(&catalog, workload, config);

  const char* csv_env = std::getenv("COLT_CSV_DIR");
  (void)colt::MaybeWriteCsvFile(csv_env != nullptr ? csv_env : "",
                                "fig5_epochs.csv", [&](std::ostream& out) {
                                  return colt::WriteEpochReportCsv(
                                      run.epochs, out);
                                });

  std::printf("Figure 5 (self-regulated overhead): what-if calls per epoch "
              "(#WI_max = %d, epoch = %d queries)\n",
              config.max_whatif_per_epoch, config.epoch_length);
  std::printf("Phase transitions occur near epochs 30-35, 65-70, 100-105.\n\n");
  std::printf("%6s %8s %8s   histogram\n", "epoch", "used", "limit");
  int64_t total_calls = 0;
  int epochs_above_half = 0;
  for (const auto& e : run.epochs) {
    total_calls += e.whatif_used;
    if (e.whatif_used > config.max_whatif_per_epoch / 2) ++epochs_above_half;
    std::printf("%6d %8d %8d   ", e.epoch, e.whatif_used, e.whatif_limit);
    for (int i = 0; i < e.whatif_used; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("\nTotal what-if calls: %lld over %zu epochs (avg %.2f, "
              "budget %d)\n",
              static_cast<long long>(total_calls), run.epochs.size(),
              static_cast<double>(total_calls) / run.epochs.size(),
              config.max_whatif_per_epoch);
  std::printf("Epochs using more than half the budget: %d of %zu\n",
              epochs_above_half, run.epochs.size());
  std::printf("Distinct indexes profiled: %lld of %zu relevant (%.0f%%; "
              "the paper reports ~11%% against a much larger universe of "
              "relevant attributes)\n",
              static_cast<long long>(run.distinct_indexes_profiled),
              relevant.value().size(),
              100.0 * run.distinct_indexes_profiled /
                  std::max<size_t>(1, relevant.value().size()));
  return 0;
}
